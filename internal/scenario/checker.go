package scenario

import (
	"fmt"
	"sync"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// maxViolations caps recorded violation strings so a systematically broken
// run reports a readable sample instead of gigabytes.
const maxViolations = 64

// Context stamps a violation with its provenance, so a reproducer shrunk
// out of a fuzz run is self-describing: the message alone names the
// generator seed and the churn epoch current when the invariant broke.
type Context struct {
	// Scenario is the scenario name ("fuzz-17-accel_chain" for generated
	// ones, which encodes the generator seed and traffic shape).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the scenario seed that reproduces the run byte-for-byte.
	Seed int64 `json:"seed"`
	// Epoch is the reconfiguration epoch current when the violation was
	// recorded (0 = before any churn committed).
	Epoch int `json:"epoch"`
	// Node is the cluster node (-1 for single-node runs).
	Node int `json:"node"`
}

// Violation is one invariant breach plus the context that reproduces it.
type Violation struct {
	Msg     string  `json:"msg"`
	Context Context `json:"context"`
}

// String renders the violation with its context suffix; a zero context
// (offline replays of foreign streams) renders the bare message.
func (v Violation) String() string {
	if v.Context == (Context{}) {
		return v.Msg
	}
	if v.Context.Node >= 0 {
		return fmt.Sprintf("%s [scenario=%s seed=%d epoch=%d node=%d]",
			v.Msg, v.Context.Scenario, v.Context.Seed, v.Context.Epoch, v.Context.Node)
	}
	return fmt.Sprintf("%s [scenario=%s seed=%d epoch=%d]",
		v.Msg, v.Context.Scenario, v.Context.Seed, v.Context.Epoch)
}

// TopicAccount is one instrumented topic's data-plane totals.
type TopicAccount struct {
	Topic     string `json:"topic"`
	Published int64  `json:"published"`
	Delivered int64  `json:"delivered"` // summed over subscribers
}

// Checker observes a scenario run from inside the instrumented task bodies
// and verifies the middleware's runtime invariants:
//
//   - no lost topic entries: under Reject every successful publish is
//     eventually consumed by every subscriber (up to the final retained
//     backlog, which is bounded by the capacity);
//   - per-publisher FIFO: each subscriber sees each publisher's sequence
//     numbers strictly increasing — consecutively under Reject (no holes),
//     monotonically under DropOldest/Latest (drops allowed, reordering not);
//   - drain-before-retire: a retired task's last job activity precedes its
//     RetireEvent instant — nothing runs past retirement;
//   - admission monotonicity: committed epochs are consecutive, rejected
//     transactions leave the epoch (and the task set) untouched;
//   - accelerator arbitration (replayed from the trace's AccelEvents): no
//     instance is granted or taken while a strictly more urgent job is
//     parked on the pool (a boosted holder finishes — releases — before
//     any job it blocks gets the accelerator), holds and grants pair up
//     structurally, and with accel_wait_bound set, no park lasts longer
//     than the bound (inversion duration limited by the longest critical
//     section the scenario author budgeted for).
//
// On the simulation backend every task body runs lock-step serialised, but
// the checker locks anyway so the same instrumentation works on OSEnv.
type Checker struct {
	mu         sync.Mutex
	ctx        Context // provenance stamped on every violation
	topics     []*topicCheck
	drains     map[string]*drainWatch
	violations []Violation
	dropped    int // violations beyond maxViolations

	published int64
	delivered int64

	injected int64 // injected task errors

	// admission bookkeeping, appended by the churn driver
	attempts []admissionAttempt

	// accelWaitBound arms the inversion-duration invariant (zero = off);
	// accelStats is filled by the Finish replay.
	accelWaitBound time.Duration
	accelStats     AccelStats
}

// AccelStats summarises the accelerator arbitration of one run.
type AccelStats struct {
	Acquires int64 // free-instance takes plus direct grants
	Parks    int64
	Boosts   int64
	MaxWait  time.Duration // longest park→grant/requeue wait
}

// topicCheck tracks one instrumented topic.
type topicCheck struct {
	name     string
	policy   core.OverflowPolicy
	capacity int
	// lossy relaxes the Reject invariants for cross-node topics under
	// injected frame loss/reorder: per-publisher FIFO must still hold
	// (the ingress filter guarantees it), but sequence gaps and unbounded
	// missing tails are legal — the frames died on the wire, on purpose.
	lossy bool
	// published[p] doubles as publisher p's last assigned sequence number:
	// sequences are only consumed by successful publishes.
	published []int64
	subs      []*subWatch
}

// subWatch is one subscriber's view: last seen sequence and consumed count
// per publisher.
type subWatch struct {
	lastSeq  []int64
	consumed []int64
}

// drainWatch records the last observed job activity of a churn task.
type drainWatch struct {
	lastStart  time.Duration
	lastFinish time.Duration
	jobs       int64
}

// admissionAttempt is one Reconfigure call as the driver saw it.
type admissionAttempt struct {
	at          time.Duration
	action      string
	err         error
	epochBefore int
	epochAfter  int
}

// NewChecker creates an empty checker.
func NewChecker() *Checker {
	return &Checker{drains: make(map[string]*drainWatch)}
}

// SetContext installs the provenance stamped on every violation recorded
// from now on. Runners call it once before the run starts; the churn
// driver keeps the epoch current through noteAttempt.
func (ck *Checker) SetContext(ctx Context) {
	ck.mu.Lock()
	ck.ctx = ctx
	ck.mu.Unlock()
}

// violationLocked records one violation (bounded) stamped with the
// current context. Callers hold ck.mu.
func (ck *Checker) violationLocked(format string, args ...any) {
	if len(ck.violations) >= maxViolations {
		ck.dropped++
		return
	}
	ck.violations = append(ck.violations, Violation{Msg: fmt.Sprintf(format, args...), Context: ck.ctx})
}

// renderLocked converts the recorded violations to their string forms,
// appending the drop summary. Callers hold ck.mu.
func (ck *Checker) renderLocked() []string {
	if len(ck.violations) == 0 && ck.dropped == 0 {
		return nil
	}
	out := make([]string, 0, len(ck.violations)+1)
	for _, v := range ck.violations {
		out = append(out, v.String())
	}
	if ck.dropped > 0 {
		out = append(out, fmt.Sprintf("... and %d more violations", ck.dropped))
	}
	return out
}

// violationf is violationLocked for callers that do NOT hold ck.mu (the
// churn drivers and instrumented task bodies, which race on OSEnv).
func (ck *Checker) violationf(format string, args ...any) {
	ck.mu.Lock()
	ck.violationLocked(format, args...)
	ck.mu.Unlock()
}

// Violations returns the structured violations recorded so far.
func (ck *Checker) Violations() []Violation {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return append([]Violation(nil), ck.violations...)
}

// addTopic registers an instrumented topic and returns its check index.
func (ck *Checker) addTopic(name string, policy core.OverflowPolicy, capacity, pubs, subs int) int {
	tc := &topicCheck{
		name:      name,
		policy:    policy,
		capacity:  capacity,
		published: make([]int64, pubs),
	}
	for i := 0; i < subs; i++ {
		tc.subs = append(tc.subs, &subWatch{
			lastSeq:  make([]int64, pubs),
			consumed: make([]int64, pubs),
		})
	}
	ck.topics = append(ck.topics, tc)
	return len(ck.topics) - 1
}

// setLossy marks topic ti as riding a faulty cross-node wire (see
// topicCheck.lossy).
func (ck *Checker) setLossy(ti int) {
	ck.mu.Lock()
	ck.topics[ti].lossy = true
	ck.mu.Unlock()
}

// seqEncode packs (publisher index, sequence) into the published value;
// 15 bits of publisher fan-in and 48 bits of sequence are beyond any
// scenario this engine can physically run.
func seqEncode(pub int, seq int64) int64 { return int64(pub)<<48 | seq }

func seqDecode(v int64) (pub int, seq int64) { return int(v >> 48), v & (1<<48 - 1) }

// nextSeq returns the sequence number publisher p of topic ti should stamp
// on its next publish attempt.
func (ck *Checker) nextSeq(ti, p int) int64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.topics[ti].published[p] + 1
}

// notePublished commits a successful publish of sequence seq.
func (ck *Checker) notePublished(ti, p int, seq int64) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	tc := ck.topics[ti]
	if seq != tc.published[p]+1 {
		ck.violationLocked("topic %s pub %d: published seq %d after %d (publisher body raced itself)",
			tc.name, p, seq, tc.published[p])
	}
	tc.published[p] = seq
	ck.published++
}

// noteTaken verifies one taken value against subscriber si's FIFO state.
func (ck *Checker) noteTaken(ti, si int, v any) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	tc := ck.topics[ti]
	raw, ok := v.(int64)
	if !ok {
		ck.violationLocked("topic %s sub %d: foreign value %T in buffer", tc.name, si, v)
		return
	}
	pub, seq := seqDecode(raw)
	if pub < 0 || pub >= len(tc.published) {
		ck.violationLocked("topic %s sub %d: value from unknown publisher %d", tc.name, si, pub)
		return
	}
	sw := tc.subs[si]
	last := sw.lastSeq[pub]
	switch {
	case seq <= last:
		ck.violationLocked("topic %s sub %d: pub %d seq %d after %d (FIFO violated: reorder or duplicate)",
			tc.name, si, pub, seq, last)
	case tc.policy == core.Reject && !tc.lossy && seq != last+1:
		ck.violationLocked("topic %s sub %d: pub %d seq %d after %d under Reject (entries lost in a gap)",
			tc.name, si, pub, seq, last)
	}
	sw.lastSeq[pub] = seq
	sw.consumed[pub]++
	ck.delivered++
}

// noteStart/noteFinish instrument churn-task job lifecycles for the
// drain-before-retire check. Churn task names are unique per incarnation.
func (ck *Checker) noteStart(name string, at time.Duration) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	w := ck.drains[name]
	if w == nil {
		w = &drainWatch{}
		ck.drains[name] = w
	}
	if at > w.lastStart {
		w.lastStart = at
	}
	w.jobs++
}

func (ck *Checker) noteFinish(name string, at time.Duration) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if w := ck.drains[name]; w != nil && at > w.lastFinish {
		w.lastFinish = at
	}
}

// noteInjected counts one deliberately injected task error.
func (ck *Checker) noteInjected() {
	ck.mu.Lock()
	ck.injected++
	ck.mu.Unlock()
}

// noteAttempt records one Reconfigure outcome and keeps the violation
// context's epoch current, so later violations name the churn epoch they
// happened under.
func (ck *Checker) noteAttempt(a admissionAttempt) {
	ck.mu.Lock()
	ck.attempts = append(ck.attempts, a)
	if a.epochAfter > ck.ctx.Epoch {
		ck.ctx.Epoch = a.epochAfter
	}
	ck.mu.Unlock()
}

// Finish runs the end-of-run verdicts against the application's recorders
// and returns every violation found (nil means a clean run).
func (ck *Checker) Finish(app *core.App) []string {
	ck.mu.Lock()
	defer ck.mu.Unlock()

	ck.checkTopicsLocked()

	// Drain-before-retire: no retired task saw job activity past its
	// retirement instant.
	for _, re := range app.Recorder().Retires() {
		w := ck.drains[re.Task]
		if w == nil {
			continue // not an instrumented churn task (mode-switch retiree)
		}
		if w.lastStart > re.At {
			ck.violationLocked("task %s: job started at %v after retirement at %v (drain-before-retire violated)",
				re.Task, w.lastStart, re.At)
		}
		if w.lastFinish > re.At {
			ck.violationLocked("task %s: job finished at %v after retirement at %v (drain-before-retire violated)",
				re.Task, w.lastFinish, re.At)
		}
	}

	// Admission monotonicity: commits bump the epoch by exactly one,
	// rejections don't move it, and every rejection is the typed
	// schedulability error (never a structural failure of a generated
	// transaction, and never a panic-shaped mystery).
	ck.checkAdmission(app.Recorder().Reconfigs())

	// Accelerator arbitration: replay the PIP events.
	ck.checkAccel(app.Recorder().AccelEvents())

	// Failure injection round-trips through the error accounting.
	if got := app.TaskErrors(); got != ck.injected {
		ck.violationLocked("task errors: middleware counted %d, checker injected %d", got, ck.injected)
	}

	// Sharded scheduler counters. Partitioned placements pin every job to
	// its home shard, so work stealing and dispatcher migrations must be
	// structurally impossible; and the epoch snapshot is published exactly
	// once at Start plus once per committed reconfiguration, so a count
	// drift means lock-free readers ran against a stale view.
	st := app.SchedStats()
	if app.Config().Mapping == core.MappingPartitioned && (st.Steals != 0 || st.Migrations != 0) {
		ck.violationLocked("partitioned mapping moved jobs across shards: %d steals, %d migrations",
			st.Steals, st.Migrations)
	}
	if st.ViewPublishes > 0 && st.ViewPublishes != int64(app.Epoch())+1 {
		ck.violationLocked("schedView published %d times over %d epochs (want epochs+1): snapshot out of sync with commits",
			st.ViewPublishes, app.Epoch())
	}

	return ck.renderLocked()
}

// checkTopicsLocked runs the no-lost-entries verdict: every subscriber
// consumed everything but the final retained backlog (Reject bounds it by
// the capacity; lossy policies bound nothing, their loss shows up as —
// allowed — seq gaps; lossy cross-node topics likewise). Callers hold
// ck.mu.
func (ck *Checker) checkTopicsLocked() {
	for _, tc := range ck.topics {
		for si, sw := range tc.subs {
			for p := range tc.published {
				missing := tc.published[p] - sw.lastSeq[p]
				if missing < 0 {
					ck.violationLocked("topic %s sub %d: consumed past publisher %d (%d > %d)",
						tc.name, si, p, sw.lastSeq[p], tc.published[p])
					continue
				}
				if tc.policy == core.Reject && !tc.lossy && missing > int64(tc.capacity) {
					ck.violationLocked("topic %s sub %d: %d entries from pub %d unaccounted (backlog bound %d): entries lost",
						tc.name, si, missing, p, tc.capacity)
				}
			}
		}
	}
}

// FinishCluster is the cluster-mode verdict: the topic data-plane
// invariants (with the lossy relaxation for cross-node topics) plus the
// admission audit on every member application — committed epochs must be
// consecutive on each node, and all nodes must have committed the same
// number of cluster transactions. The single-app audits that need
// instrumented churn bodies (drain-before-retire, accelerator arbitration,
// task-error accounting) do not apply: cluster churn is pure admission and
// never retires tasks.
func (ck *Checker) FinishCluster(apps []*core.App) []string {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	ck.checkTopicsLocked()
	commits := 0
	for _, a := range ck.attempts {
		if a.err == nil {
			commits++
			if a.epochAfter != a.epochBefore+1 {
				ck.violationLocked("%s at %v: committed but cluster epoch went %d -> %d",
					a.action, a.at, a.epochBefore, a.epochAfter)
			}
		} else if a.epochAfter != a.epochBefore {
			ck.violationLocked("%s at %v: rejected (%v) but cluster epoch went %d -> %d",
				a.action, a.at, a.err, a.epochBefore, a.epochAfter)
		}
	}
	for node, app := range apps {
		recs := app.Recorder().Reconfigs()
		for i, r := range recs {
			if r.Epoch != i+1 {
				ck.violationLocked("node %d: reconfig record %d has epoch %d (epochs must be consecutive)", node, i, r.Epoch)
			}
		}
		if len(recs) != commits {
			ck.violationLocked("node %d committed %d epochs, cluster driver committed %d (nodes diverged)",
				node, len(recs), commits)
		}
	}
	return ck.renderLocked()
}

// checkEpochs verifies that committed reconfiguration records carry
// consecutive epochs starting at 1 — shared between the live verdict and
// the telemetry-stream replay (CheckStream).
func (ck *Checker) checkEpochs(recs []trace.ReconfigRecord) {
	for i, r := range recs {
		if r.Epoch != i+1 {
			ck.violationLocked("reconfig record %d has epoch %d (epochs must be consecutive)", i, r.Epoch)
		}
	}
}

func (ck *Checker) checkAdmission(recs []trace.ReconfigRecord) {
	ck.checkEpochs(recs)
	commits := 0
	for _, a := range ck.attempts {
		if a.err == nil {
			commits++
			if a.epochAfter != a.epochBefore+1 {
				ck.violationLocked("%s at %v: committed but epoch went %d -> %d",
					a.action, a.at, a.epochBefore, a.epochAfter)
			}
		} else if a.epochAfter != a.epochBefore {
			ck.violationLocked("%s at %v: rejected (%v) but epoch went %d -> %d",
				a.action, a.at, a.err, a.epochBefore, a.epochAfter)
		}
	}
	if commits != len(recs) {
		ck.violationLocked("driver committed %d transactions, recorder has %d epochs", commits, len(recs))
	}
}

// checkAccel replays the recorded accelerator-arbitration events and
// verifies the PIP invariants: priority-ordered admission (no grant or
// acquisition while a strictly more urgent job is parked on the pool —
// which is exactly "a boosted holder must finish, i.e. release, before any
// job it blocks runs on the accelerator"), structural hold/release pairing
// per instance, and — when accel_wait_bound is set — a cap on how long any
// job stays parked (inversion duration bounded by the critical-section
// budget).
func (ck *Checker) checkAccel(events []trace.AccelEvent) {
	type jobKey struct {
		task string
		job  int64
	}
	type parkInfo struct {
		pool string
		prio int64
		at   time.Duration
	}
	parked := make(map[jobKey]parkInfo)
	holders := make(map[string]jobKey) // instance -> holder
	var st AccelStats

	// endWait closes one park episode: bound check and stats.
	endWait := func(k jobKey, p parkInfo, now time.Duration, how string) {
		wait := now - p.at
		if wait > st.MaxWait {
			st.MaxWait = wait
		}
		if ck.accelWaitBound > 0 && wait > ck.accelWaitBound {
			ck.violationLocked("accel %s: job %s#%d waited %v for %s (bound %v): inversion not bounded by the critical-section budget",
				p.pool, k.task, k.job, wait, how, ck.accelWaitBound)
		}
	}
	// mostUrgentParked flags an admission that overtakes a parked waiter.
	checkOrder := func(pool string, k jobKey, prio int64, now time.Duration, how string) {
		for wk, p := range parked { //yasmin:orderinvariant every overtaken waiter violates independently
			if wk == k || p.pool != pool {
				continue
			}
			if p.prio < prio {
				ck.violationLocked("accel %s at %v: %s to %s#%d (prio %d) while more urgent %s#%d (prio %d) was parked",
					pool, now, how, k.task, k.job, prio, wk.task, wk.job, p.prio)
			}
		}
	}

	for _, e := range events {
		k := jobKey{task: e.Task, job: e.Job}
		switch e.Kind {
		case trace.AccelPark:
			st.Parks++
			if p, dup := parked[k]; dup {
				ck.violationLocked("accel %s at %v: %s#%d parked again while already parked on %s",
					e.Pool, e.At, e.Task, e.Job, p.pool)
			}
			parked[k] = parkInfo{pool: e.Pool, prio: e.Prio, at: e.At}
		case trace.AccelBoost:
			st.Boosts++
			// A chain boost re-prioritises parked holders: keep the replay's
			// view of their urgency current.
			if p, ok := parked[k]; ok {
				p.prio = e.Prio
				parked[k] = p
			}
		case trace.AccelAcquire, trace.AccelGrant:
			st.Acquires++
			how := "acquire"
			if e.Kind == trace.AccelGrant {
				how = "grant"
			}
			checkOrder(e.Pool, k, e.Prio, e.At, how)
			if h, busy := holders[e.Accel]; busy {
				ck.violationLocked("accel instance %s at %v: %s to %s#%d while %s#%d still holds it",
					e.Accel, e.At, how, e.Task, e.Job, h.task, h.job)
			}
			holders[e.Accel] = k
			if p, ok := parked[k]; ok {
				endWait(k, p, e.At, how)
				delete(parked, k)
			} else if e.Kind == trace.AccelGrant {
				ck.violationLocked("accel %s at %v: grant to %s#%d which was not parked", e.Pool, e.At, e.Task, e.Job)
			}
		case trace.AccelRequeue:
			// The waiter leaves the list for a fresh scheduling pass; its
			// park episode ends here (it may park again and is then timed
			// anew).
			if p, ok := parked[k]; ok {
				endWait(k, p, e.At, "requeue")
				delete(parked, k)
			}
		case trace.AccelRelease:
			if h, busy := holders[e.Accel]; !busy {
				ck.violationLocked("accel instance %s at %v: released by %s#%d but no hold was recorded",
					e.Accel, e.At, e.Task, e.Job)
			} else if h != k {
				ck.violationLocked("accel instance %s at %v: released by %s#%d but held by %s#%d",
					e.Accel, e.At, e.Task, e.Job, h.task, h.job)
			}
			delete(holders, e.Accel)
		}
	}
	ck.accelStats = st
}

// AccelStats returns the arbitration counters gathered by Finish.
func (ck *Checker) AccelStats() AccelStats {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.accelStats
}

// Published and Delivered return the checker's data-plane counters.
func (ck *Checker) Published() int64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.published
}

// Delivered returns the total entries subscribers consumed.
func (ck *Checker) Delivered() int64 {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.delivered
}

// TopicTotals returns the per-topic data-plane accounting, in topic
// registration order (deterministic for a given scenario).
func (ck *Checker) TopicTotals() []TopicAccount {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	out := make([]TopicAccount, 0, len(ck.topics))
	for _, tc := range ck.topics {
		ta := TopicAccount{Topic: tc.name}
		for _, n := range tc.published {
			ta.Published += n
		}
		for _, sw := range tc.subs {
			for _, n := range sw.consumed {
				ta.Delivered += n
			}
		}
		out = append(out, ta)
	}
	return out
}
