package fuzz

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/scenario"
)

// TestGenAlwaysValid sweeps seeds across every shape (cluster included) and
// asserts each scenario validates, YAML round-trips, and is byte-stable:
// the same seed must regenerate the identical scenario.
func TestGenAlwaysValid(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < n; seed++ {
		sc := Gen(seed, Config{Cluster: true})
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
		again := Gen(seed, Config{Cluster: true})
		if !reflect.DeepEqual(sc, again) {
			t.Fatalf("seed %d: generator not deterministic", seed)
		}
		back, err := scenario.Load(sc.WriteYAML(), "gen.yaml")
		if err != nil {
			t.Fatalf("seed %d (%s): reparse: %v", seed, sc.Name, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("seed %d (%s): YAML round trip diverged", seed, sc.Name)
		}
	}
}

// TestGenCleanRuns proves generated scenarios are violation-free on the
// healthy middleware — the generator's output must not flag the checker by
// itself, or every fuzz finding would drown in noise.
func TestGenCleanRuns(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	for seed := int64(0); seed < n; seed++ {
		sc := Gen(seed, Config{Cluster: true})
		rep, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
		if len(rep.Violations) > 0 {
			t.Errorf("seed %d (%s): %s", seed, sc.Name, rep.Violations[0])
		}
	}
}

// TestFuzzerFindsStaleWaiterResortBug is the self-test the tentpole exists
// for: with the historical PR 5 defect re-enabled (boost without waiter
// re-sort), the campaign must rediscover it within a CI-sized seed budget
// and shrink it to a small reproducer; with the defect off, the same
// reproducer must run clean.
func TestFuzzerFindsStaleWaiterResortBug(t *testing.T) {
	core.TestingSetStaleWaiterResortBug(true)
	defer core.TestingSetStaleWaiterResortBug(false)

	var found *scenario.Scenario
	for seed := int64(0); seed < 60 && found == nil; seed++ {
		sc := Gen(seed, Config{Shapes: []Shape{ShapeAccelChain}})
		rep, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range rep.Violations {
			if strings.Contains(v, "while more urgent") {
				found = sc
				break
			}
		}
	}
	if found == nil {
		t.Fatal("seeded stale-waiter-resort bug not rediscovered within 60 accel_chain seeds")
	}

	min, runs := Shrink(found, ViolationPredicate(), ShrinkOpts{})
	t.Logf("reproducer: %d tasks, %d churn phases, %d groups (%d shrink runs)",
		min.TaskCount(), len(min.Churn), len(min.Groups), runs)
	if min.TaskCount() > 10 {
		t.Errorf("reproducer has %d tasks, want <= 10", min.TaskCount())
	}
	if len(min.Churn) > 3 {
		t.Errorf("reproducer has %d churn phases, want <= 3", len(min.Churn))
	}

	// The reproducer must still fail with the bug on...
	rep, err := scenario.Run(min)
	if err != nil {
		t.Fatalf("reproducer run: %v", err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("shrunk reproducer no longer fails with the bug enabled")
	}
	// ...and run clean with the fix restored.
	core.TestingSetStaleWaiterResortBug(false)
	rep, err = scenario.Run(min)
	if err != nil {
		t.Fatalf("reproducer run (fixed): %v", err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("reproducer still fails with the fix: %s", rep.Violations[0])
	}
}

// TestCorpusReproducerStillReproduces loads the committed minimised
// reproducer from scenarios/corpus/ and proves it still distinguishes the
// historical buggy arbiter from the fixed one: clean on a healthy build,
// flagged with the defect re-enabled. If a refactor makes the reproducer
// silently stop reproducing, the corpus would guard nothing — this test is
// the guard on the guard.
func TestCorpusReproducerStillReproduces(t *testing.T) {
	sc, err := scenario.LoadFile("../../../scenarios/corpus/stale-waiter-resort.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("committed reproducer fails on a healthy build: %s", rep.Violations[0])
	}

	core.TestingSetStaleWaiterResortBug(true)
	defer core.TestingSetStaleWaiterResortBug(false)
	rep, err = scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "while more urgent") {
			found = true
		}
	}
	if !found {
		t.Fatalf("committed reproducer no longer reproduces the stale-waiter-resort defect; violations: %v", rep.Violations)
	}
}

// TestShrinkStopsAtBudget bounds the shrinker's work.
func TestShrinkStopsAtBudget(t *testing.T) {
	core.TestingSetStaleWaiterResortBug(true)
	defer core.TestingSetStaleWaiterResortBug(false)
	sc := Gen(0, Config{Shapes: []Shape{ShapeAccelChain}})
	if !ViolationPredicate()(sc) {
		t.Skip("seed 0 does not fail under the seeded bug on this build")
	}
	_, runs := Shrink(sc, ViolationPredicate(), ShrinkOpts{MaxRuns: 10})
	if runs > 10 {
		t.Fatalf("shrink spent %d runs, budget 10", runs)
	}
}

// TestCampaignDeterministic runs the same campaign twice and requires
// byte-identical logs — the property CI pins with two yasmin-stress -fuzz
// invocations.
func TestCampaignDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		res, err := Campaign(Options{N: 8, Seed: 42, Out: &buf})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ran != 8 {
			t.Fatalf("ran %d, want 8", res.Ran)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("campaign output not deterministic:\n--- first\n%s--- second\n%s", a, b)
	}
	if len(a) == 0 || !strings.Contains(a, "campaign: 8 run") {
		t.Fatalf("unexpected campaign output:\n%s", a)
	}
}

// TestRunDiffAgrees runs the differential leg on a handful of generated
// single-node scenarios; Sim and OS must agree within the tolerance model.
func TestRunDiffAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential runs")
	}
	checked := 0
	for seed := int64(0); seed < 12 && checked < 4; seed++ {
		sc := Gen(seed, Config{})
		dr, err := RunDiff(sc, DiffOpts{})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc.Name, err)
		}
		if dr.Skipped {
			continue
		}
		checked++
		if !dr.Ok() {
			// Wall-clock leg: retry once so a host load spike (which pushes
			// timing-derived counters past tolerance without real divergence)
			// doesn't flake the suite; deterministic mismatches reproduce.
			dr2, err := RunDiff(sc, DiffOpts{})
			if err != nil {
				t.Fatalf("seed %d (%s): retry: %v", seed, sc.Name, err)
			}
			if dr2.Ok() {
				t.Logf("seed %d (%s): transient mismatch cleared on retry: %v", seed, sc.Name, dr.Mismatches)
				continue
			}
			t.Errorf("seed %d (%s): %v", seed, sc.Name, dr2.Mismatches)
		}
	}
	if checked == 0 {
		t.Fatal("no scenario reached the differential leg")
	}
}

// TestRunDiffSkipsCluster pins the cluster skip path.
func TestRunDiffSkipsCluster(t *testing.T) {
	sc := Gen(4, Config{Shapes: []Shape{ShapeCluster}})
	dr, err := RunDiff(sc, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Skipped {
		t.Fatal("cluster scenario was not skipped")
	}
}

// FuzzScenario is the native fuzz target: any int64 must map to a valid,
// runnable, round-trippable, violation-free scenario. `go test -fuzz
// FuzzScenario` explores seeds beyond the deterministic sweeps above.
func FuzzScenario(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 106, 1 << 52, -9} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Gen(seed, Config{Cluster: true, MaxDuration: 80 * time.Millisecond})
		if err := sc.Validate(); err != nil {
			t.Fatalf("invalid scenario: %v", err)
		}
		back, err := scenario.Load(sc.WriteYAML(), "fuzz.yaml")
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatal("YAML round trip diverged")
		}
		rep, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("checker violation: %s", rep.Violations[0])
		}
	})
}
