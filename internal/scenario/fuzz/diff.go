package fuzz

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// Tolerance is the comparison model for counters that legitimately differ
// between the simulated and wall-clock backends: the OS scheduler preempts
// when it pleases, so anything proportional to elapsed-time progress
// (jobs, publishes, deliveries, failure draws) lands near — not at — the
// simulated figure. A pair (a, b) agrees when |a-b| <= max(Abs, Rel*max(a,b)).
type Tolerance struct {
	Rel float64
	Abs int64
}

func (t Tolerance) ok(a, b int64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	bound := int64(t.Rel * float64(m))
	if t.Abs > bound {
		bound = t.Abs
	}
	return d <= bound
}

// DiffOpts configures RunDiff.
type DiffOpts struct {
	// Tol overrides the default tolerance (Rel 0.5, Abs 50) for the
	// timing-derived counters.
	Tol *Tolerance
	// OS is passed through to the wall-clock leg (spin vs sleep, pinning).
	OS scenario.OSRunOpts
}

func (o *DiffOpts) tol() Tolerance {
	if o.Tol != nil {
		return *o.Tol
	}
	return Tolerance{Rel: 0.5, Abs: 50}
}

// DiffResult is the outcome of one differential run.
type DiffResult struct {
	// Skipped is set (with Reason) when the scenario cannot run on the OS
	// backend at all — cluster scenarios are simulation-only.
	Skipped bool
	Reason  string

	Sim *scenario.Report
	OS  *scenario.Report

	// SimStream/OSStream hold the offline CheckStream verdicts for each
	// leg's telemetry export (the OS leg is checked under RelaxedOrder).
	SimStream []string
	OSStream  []string

	// Mismatches lists every disagreement: exact-field divergence, tolerance
	// breaches, and checker violations from either leg. Empty means the two
	// backends agree on everything checker-visible.
	Mismatches []string
}

// Ok reports whether the differential run passed (or was skipped).
func (r *DiffResult) Ok() bool { return r.Skipped || len(r.Mismatches) == 0 }

// RunDiff executes the same scenario on the simulation backend and the
// wall-clock OS backend and diffs the checker-visible behaviour:
//
//   - both legs must be violation-free, live and in telemetry replay
//     (the OS replay runs under RelaxedOrder — concurrent OS threads
//     publish records in nondeterministic order, so only order-free
//     invariants re-verify offline);
//   - deterministic fields must match exactly: static shape (tasks, peak
//     tasks, workers) and driver-sequenced outcomes (epochs, retires,
//     admission rejections) — the churn driver makes identical decisions
//     on both backends by construction (same seeded rng);
//   - timing-derived counters (jobs, publishes, deliveries, task errors,
//     per-topic accounting) must agree within the tolerance model; topics
//     that can saturate their reject-policy capacity are compared for
//     progress only (see saturableTopics).
//
// The OS leg runs with accel_wait_bound disabled: the bound asserts
// simulated-time inversion lengths, which wall-clock preemption noise
// would trip spuriously.
func RunDiff(sc *scenario.Scenario, opts DiffOpts) (*DiffResult, error) {
	if sc.Nodes != nil {
		return &DiffResult{Skipped: true, Reason: "cluster scenarios run on the simulation backend only"}, nil
	}
	res := &DiffResult{}

	simSink := telemetry.NewMemorySink()
	simPipe, err := telemetry.New(simSink, telemetry.Options{})
	if err != nil {
		return nil, fmt.Errorf("fuzz: sim telemetry: %w", err)
	}
	simRep, err := scenario.RunWith(sc, scenario.RunOpts{
		Telemetry: simPipe.Blocking(),
		PerTopic:  true,
	})
	if cerr := simPipe.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("fuzz: sim telemetry close: %w", cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: sim leg: %w", err)
	}
	res.Sim = simRep
	res.SimStream = scenario.CheckStream(simSink.Stream(), scenario.StreamCheckOpts{
		AccelWaitBound: sc.AccelWaitBound.Std(),
	})

	osSC := clone(sc)
	osSC.AccelWaitBound = 0
	osSink := telemetry.NewMemorySink()
	osPipe, err := telemetry.New(osSink, telemetry.Options{})
	if err != nil {
		return nil, fmt.Errorf("fuzz: os telemetry: %w", err)
	}
	osRep, err := scenario.RunOS(osSC, scenario.RunOpts{
		Telemetry: osPipe.Blocking(),
		PerTopic:  true,
		OS:        opts.OS,
	})
	if cerr := osPipe.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("fuzz: os telemetry close: %w", cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: os leg: %w", err)
	}
	res.OS = osRep
	res.OSStream = scenario.CheckStream(osSink.Stream(), scenario.StreamCheckOpts{RelaxedOrder: true})

	res.Mismatches = diffReports(sc, simRep, osRep, res.SimStream, res.OSStream, opts.tol())
	return res, nil
}

// saturableTopics returns the instance names of reject-policy topics whose
// offered load can exceed the drain rate: more publishes arrive per consume
// period than the capacity holds, so some publishes are rejected by design.
// For those topics the accepted-publish count measures admission
// INTERLEAVING — how publishes and takes happen to alternate — not progress,
// and the two backends legitimately schedule that interleaving differently.
// Their counters are compared for progress only (both zero or both nonzero).
func saturableTopics(sc *scenario.Scenario) map[string]bool {
	out := map[string]bool{}
	for _, tp := range sc.Topics {
		if tp.Policy != "reject" || tp.PublishPeriod == 0 {
			continue
		}
		perDrain := float64(tp.Pubs) * float64(tp.ConsumePeriod) / float64(tp.PublishPeriod)
		if perDrain > float64(tp.Capacity) {
			for k := 0; k < tp.Count; k++ {
				out[fmt.Sprintf("%s-%d", tp.Name, k)] = true
			}
		}
	}
	return out
}

// diffReports compares the two legs and collects every disagreement.
func diffReports(sc *scenario.Scenario, sim, os *scenario.Report, simStream, osStream []string, tol Tolerance) []string {
	var out []string
	for _, v := range sim.Violations {
		out = append(out, fmt.Sprintf("sim checker: %s", v))
	}
	for _, v := range os.Violations {
		out = append(out, fmt.Sprintf("os checker: %s", v))
	}
	for _, v := range simStream {
		out = append(out, fmt.Sprintf("sim stream: %s", v))
	}
	for _, v := range osStream {
		out = append(out, fmt.Sprintf("os stream: %s", v))
	}

	exact := []struct {
		name     string
		sim, os_ int64
	}{
		{"tasks", int64(sim.Tasks), int64(os.Tasks)},
		{"peak_tasks", int64(sim.PeakTasks), int64(os.PeakTasks)},
		{"workers", int64(sim.Workers), int64(os.Workers)},
		{"epochs", int64(sim.Epochs), int64(os.Epochs)},
		{"retires", int64(sim.Retires), int64(os.Retires)},
		{"rejections", sim.Rejections, os.Rejections},
	}
	for _, f := range exact {
		if f.sim != f.os_ {
			out = append(out, fmt.Sprintf("exact field %s diverges: sim %d, os %d", f.name, f.sim, f.os_))
		}
	}

	saturable := saturableTopics(sc)
	loose := []struct {
		name     string
		sim, os_ int64
	}{
		{"jobs", int64(sim.Jobs), int64(os.Jobs)},
		{"task_errors", sim.TaskErrors, os.TaskErrors},
	}
	// The global publish/deliver sums inherit the weakest member: with any
	// saturable topic in the mix they only prove joint progress, otherwise
	// they get the full tolerance check.
	if len(saturable) == 0 {
		loose = append(loose,
			struct {
				name     string
				sim, os_ int64
			}{"published", sim.Published, os.Published},
			struct {
				name     string
				sim, os_ int64
			}{"delivered", sim.Delivered, os.Delivered})
	} else {
		if (sim.Published > 0) != (os.Published > 0) {
			out = append(out, fmt.Sprintf("published progress diverges: sim %d, os %d", sim.Published, os.Published))
		}
		if (sim.Delivered > 0) != (os.Delivered > 0) {
			out = append(out, fmt.Sprintf("delivered progress diverges: sim %d, os %d", sim.Delivered, os.Delivered))
		}
	}
	for _, f := range loose {
		if !tol.ok(f.sim, f.os_) {
			out = append(out, fmt.Sprintf("counter %s outside tolerance: sim %d, os %d", f.name, f.sim, f.os_))
		}
	}

	osTopics := map[string]scenario.TopicAccount{}
	for _, ta := range os.Topics {
		osTopics[ta.Topic] = ta
	}
	for _, sa := range sim.Topics {
		oa, ok := osTopics[sa.Topic]
		if !ok {
			out = append(out, fmt.Sprintf("topic %s present on sim leg only", sa.Topic))
			continue
		}
		if saturable[sa.Topic] {
			if (sa.Published > 0) != (oa.Published > 0) || (sa.Delivered > 0) != (oa.Delivered > 0) {
				out = append(out, fmt.Sprintf("saturated topic %s progress diverges: sim %d/%d, os %d/%d",
					sa.Topic, sa.Published, sa.Delivered, oa.Published, oa.Delivered))
			}
			delete(osTopics, sa.Topic)
			continue
		}
		if !tol.ok(sa.Published, oa.Published) {
			out = append(out, fmt.Sprintf("topic %s published outside tolerance: sim %d, os %d", sa.Topic, sa.Published, oa.Published))
		}
		if !tol.ok(sa.Delivered, oa.Delivered) {
			out = append(out, fmt.Sprintf("topic %s delivered outside tolerance: sim %d, os %d", sa.Topic, sa.Delivered, oa.Delivered))
		}
		delete(osTopics, sa.Topic)
	}
	for name := range osTopics { //yasmin:orderinvariant leftover-set violations are order-independent
		out = append(out, fmt.Sprintf("topic %s present on os leg only", name))
	}
	return out
}
