// Package fuzz grows scenarios instead of writing them: a seeded
// property-based generator emits random-but-valid scenario.Scenario
// values across named traffic shapes, a delta-debugging shrinker minimizes
// checker-violating scenarios to small reproducers, and a differential
// runner executes the same scenario on the SimEnv and OSEnv backends and
// diffs the checker-visible behaviour under an explicit tolerance model.
package fuzz

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

// Shape names one generated traffic pattern. Every shape produces a valid
// scenario; they differ in which subsystem they push hardest.
type Shape string

const (
	// ShapeUniform is the unbiased mix: groups, topics, churn, failures.
	ShapeUniform Shape = "uniform"
	// ShapeDiurnal models a diurnal load curve: periodic retunes sweep the
	// group task periods down and back up, so utilisation breathes over the
	// run while admission re-validates every swing.
	ShapeDiurnal Shape = "diurnal"
	// ShapeBurst is the bursty fan-in storm: many publishers hammer few
	// subscribers through a shallow buffer at short periods, with churn
	// spiking load mid-storm.
	ShapeBurst Shape = "burst"
	// ShapeBackpressure is the slow-subscriber pattern: consume periods far
	// above publish periods force sustained overflow-policy pressure.
	ShapeBackpressure Shape = "backpressure"
	// ShapeAccelChain builds PIP holder chains: a chain group holds one
	// pool and parks mid-job on a second while more urgent accel-bound
	// tasks contend — the structural shape of the PR 5 waiter re-sort bug.
	ShapeAccelChain Shape = "accel_chain"
	// ShapeSteal skews per-group utilisation hard under the global mapping:
	// a heavy short-period minority next to a near-idle majority, so ready
	// queues pile up on a subset of release shards and idle workers make
	// progress only through the steal path, while retune/ping-pong churn
	// republishes the dispatch tables mid-traffic.
	ShapeSteal Shape = "steal"
	// ShapeCluster generates multi-node scenarios with cross-node topics,
	// injected loss/reorder and cluster-wide churn.
	ShapeCluster Shape = "cluster"
)

// DefaultShapes is the single-node shape set Gen draws from when the
// config lists none.
var DefaultShapes = []Shape{ShapeUniform, ShapeDiurnal, ShapeBurst, ShapeBackpressure, ShapeAccelChain, ShapeSteal}

// AllShapes adds the cluster shape.
var AllShapes = append(append([]Shape{}, DefaultShapes...), ShapeCluster)

// Config bounds the generator.
type Config struct {
	// MaxTasks caps the statically declared task count (default 40).
	MaxTasks int
	// MaxDuration caps the simulated run length (default 250ms).
	MaxDuration time.Duration
	// Shapes is the set Gen draws from; empty means DefaultShapes, plus
	// ShapeCluster when Cluster is set.
	Shapes []Shape
	// Cluster admits cluster scenarios into the default shape set.
	Cluster bool
}

func (c *Config) shapes() []Shape {
	if len(c.Shapes) > 0 {
		return c.Shapes
	}
	if c.Cluster {
		return AllShapes
	}
	return DefaultShapes
}

func (c *Config) maxTasks() int {
	if c.MaxTasks > 0 {
		return c.MaxTasks
	}
	return 40
}

func (c *Config) maxDuration() time.Duration {
	if c.MaxDuration > 0 {
		return c.MaxDuration
	}
	return 250 * time.Millisecond
}

// seedMask keeps seeds non-negative and exactly representable as float64,
// so a generated scenario survives the YAML round trip (the subset parser
// types all numbers as float64).
const seedMask = 1<<53 - 1

// Gen deterministically derives one valid scenario from the seed: equal
// (seed, config) pairs produce identical scenarios, and the scenario's own
// Seed field is set so running it is reproducible too. The name encodes
// seed and shape ("fuzz-17-accel_chain"). Gen panics if it ever emits a
// scenario its own Validate rejects — that is a generator bug the native
// FuzzScenario target exists to surface.
func Gen(seed int64, cfg Config) *scenario.Scenario {
	seed &= seedMask
	rng := rand.New(rand.NewSource(seed))
	shapes := cfg.shapes()
	shape := shapes[rng.Intn(len(shapes))]

	sc := &scenario.Scenario{
		Name:     fmt.Sprintf("fuzz-%d-%s", seed, shape),
		Seed:     seed,
		Workers:  2 + rng.Intn(3),
		Duration: spec.Duration(durBetween(rng, 120*time.Millisecond, cfg.maxDuration())),
	}
	if d := cfg.maxDuration(); sc.Duration.Std() > d {
		sc.Duration = spec.Duration(d)
	}
	switch rng.Intn(5) {
	case 0:
		sc.Priority = "rm"
	case 1:
		sc.Priority = "dm"
	}
	if rng.Intn(4) == 0 && shape != ShapeCluster {
		sc.Mapping = "partitioned"
	}

	switch shape {
	case ShapeUniform:
		genUniform(rng, sc)
	case ShapeDiurnal:
		genDiurnal(rng, sc)
	case ShapeBurst:
		genBurst(rng, sc)
	case ShapeBackpressure:
		genBackpressure(rng, sc)
	case ShapeAccelChain:
		genAccelChain(rng, sc)
	case ShapeSteal:
		genSteal(rng, sc)
	case ShapeCluster:
		genCluster(rng, sc)
	}

	clampTasks(sc, cfg.maxTasks())
	scaleUtilisation(sc, 0.75)
	if err := sc.Validate(); err != nil {
		panic(fmt.Sprintf("fuzz: generator emitted an invalid scenario (seed %d, shape %s): %v", seed, shape, err))
	}
	return sc
}

// durBetween samples a duration uniformly in [lo, hi].
func durBetween(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)+1))
}

func ms(n int) spec.Duration { return spec.Duration(time.Duration(n) * time.Millisecond) }

// periodDist samples a log-uniform period range within [loMin..hiMax] ms.
func periodDist(rng *rand.Rand, loMin, loMax, hiMin, hiMax int) scenario.Dist {
	lo := loMin + rng.Intn(loMax-loMin+1)
	hi := hiMin + rng.Intn(hiMax-hiMin+1)
	if hi <= lo {
		hi = lo + 1
	}
	return scenario.Dist{Min: ms(lo), Max: ms(hi)}
}

func genGroups(rng *rand.Rand, sc *scenario.Scenario, n int) {
	for i := 0; i < n; i++ {
		g := scenario.TaskGroup{
			Name:        fmt.Sprintf("g%d", i),
			Count:       2 + rng.Intn(5),
			Period:      periodDist(rng, 2, 6, 15, 60),
			Utilization: 0.02 + 0.06*rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			g.DeadlineRatio = 0.8 + 0.2*rng.Float64()
		}
		if rng.Intn(2) == 0 {
			g.OffsetJitter = true
		}
		sc.Groups = append(sc.Groups, g)
	}
}

func genTopics(rng *rand.Rand, sc *scenario.Scenario, n int) {
	policies := []string{"", "reject", "drop_oldest", "latest"}
	for i := 0; i < n; i++ {
		sc.Topics = append(sc.Topics, scenario.TopicShape{
			Name:          fmt.Sprintf("t%d", i),
			Count:         1 + rng.Intn(2),
			Pubs:          1 + rng.Intn(3),
			Subs:          1 + rng.Intn(3),
			Capacity:      4 + rng.Intn(29),
			Policy:        policies[rng.Intn(len(policies))],
			PublishPeriod: ms(2 + rng.Intn(7)),
			ConsumePeriod: ms(3 + rng.Intn(10)),
		})
	}
}

// genChurnMix appends up to n churn phases from the single-node actions.
func genChurnMix(rng *rand.Rand, sc *scenario.Scenario, n int, withMode bool) {
	actions := []string{"add", "ping_pong", "retune"}
	if withMode {
		actions = append(actions, "mode")
	}
	horizon := sc.Duration.Std()
	for i := 0; i < n; i++ {
		cp := scenario.ChurnPhase{
			At:     spec.Duration(durBetween(rng, horizon/10, horizon/2)),
			Action: actions[rng.Intn(len(actions))],
		}
		if rng.Intn(3) > 0 {
			cp.Every = spec.Duration(durBetween(rng, horizon/10, horizon/3))
		}
		if cp.Action != "mode" {
			cp.Count = 2 + rng.Intn(4)
			cp.Utilization = 0.005 + 0.02*rng.Float64()
			cp.Period = periodDist(rng, 5, 12, 20, 80)
		}
		sc.Churn = append(sc.Churn, cp)
	}
}

func maybeFailures(rng *rand.Rand, sc *scenario.Scenario) {
	if rng.Intn(3) == 0 {
		sc.Failures.TaskErrorRate = 0.05 + 0.25*rng.Float64()
	}
}

func genUniform(rng *rand.Rand, sc *scenario.Scenario) {
	genGroups(rng, sc, 1+rng.Intn(2))
	genTopics(rng, sc, 1+rng.Intn(2))
	genChurnMix(rng, sc, rng.Intn(3), true)
	maybeFailures(rng, sc)
}

func genDiurnal(rng *rand.Rand, sc *scenario.Scenario) {
	genGroups(rng, sc, 1+rng.Intn(2))
	for i := range sc.Groups {
		sc.Groups[i].OffsetJitter = true
	}
	genTopics(rng, sc, 1)
	// The load curve: periodic retunes halve and restore the periods of a
	// slice of the fleet, so demanded utilisation breathes over the run.
	horizon := sc.Duration.Std()
	total := 0
	for i := range sc.Groups {
		total += sc.Groups[i].Count
	}
	sc.Churn = append(sc.Churn, scenario.ChurnPhase{
		At:     spec.Duration(horizon / 10),
		Every:  spec.Duration(horizon / 8),
		Action: "retune",
		Count:  1 + total/2,
	})
	if rng.Intn(2) == 0 {
		sc.Churn = append(sc.Churn, scenario.ChurnPhase{
			At:     spec.Duration(horizon / 4),
			Every:  spec.Duration(horizon / 4),
			Action: "mode",
		})
	}
	maybeFailures(rng, sc)
}

func genBurst(rng *rand.Rand, sc *scenario.Scenario) {
	policies := []string{"reject", "drop_oldest"}
	sc.Topics = append(sc.Topics, scenario.TopicShape{
		Name:          "storm",
		Count:         1,
		Pubs:          4 + rng.Intn(5),
		Subs:          1 + rng.Intn(2),
		Capacity:      2 + rng.Intn(7),
		Policy:        policies[rng.Intn(len(policies))],
		PublishPeriod: ms(1 + rng.Intn(3)),
		ConsumePeriod: ms(4 + rng.Intn(7)),
	})
	if rng.Intn(2) == 0 {
		genGroups(rng, sc, 1)
	}
	horizon := sc.Duration.Std()
	sc.Churn = append(sc.Churn, scenario.ChurnPhase{
		At:          spec.Duration(horizon / 5),
		Every:       spec.Duration(horizon / 5),
		Action:      "add",
		Count:       2 + rng.Intn(4),
		Utilization: 0.01 + 0.02*rng.Float64(),
	})
}

func genBackpressure(rng *rand.Rand, sc *scenario.Scenario) {
	policies := []string{"drop_oldest", "latest", "reject"}
	for i := 0; i < 1+rng.Intn(2); i++ {
		sc.Topics = append(sc.Topics, scenario.TopicShape{
			Name:          fmt.Sprintf("slow%d", i),
			Count:         1 + rng.Intn(2),
			Pubs:          1 + rng.Intn(3),
			Subs:          1 + rng.Intn(3),
			Capacity:      4 + rng.Intn(13),
			Policy:        policies[rng.Intn(len(policies))],
			PublishPeriod: ms(1 + rng.Intn(4)),
			ConsumePeriod: ms(15 + rng.Intn(26)),
		})
	}
	genChurnMix(rng, sc, rng.Intn(2), false)
	maybeFailures(rng, sc)
}

func genAccelChain(rng *rand.Rand, sc *scenario.Scenario) {
	// The stale-grant race needs two MID-JOB waiters on the same second
	// pool that receive different boosts, so the two chain groups must
	// enter dsp from different outer pools (a shared outer pool would
	// boost both waiters to the same priority — no strict inversion). The
	// dsp-bound group holds dsp whole-job with a large wcet: its long
	// occupancy is the window in which both chain tasks park mid-job and
	// a hot gpu park can re-prioritise one of them.
	sc.Accels = []scenario.AccelDecl{
		{Name: "gpu"}, {Name: "aux"}, {Name: "dsp"},
	}
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:        "chainA",
		Count:       1 + rng.Intn(2),
		Period:      periodDist(rng, 10, 13, 14, 18),
		Utilization: 0.08 + 0.06*rng.Float64(),
		Accel:       "gpu",
		AccelShare:  0.25 + 0.10*rng.Float64(),
		Accel2:      "dsp",
		Accel2Share: 0.25 + 0.10*rng.Float64(),
	})
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:        "chainB",
		Count:       1 + rng.Intn(2),
		Period:      periodDist(rng, 6, 7, 8, 9),
		Utilization: 0.08 + 0.06*rng.Float64(),
		Accel:       "aux",
		AccelShare:  0.25 + 0.10*rng.Float64(),
		Accel2:      "dsp",
		Accel2Share: 0.25 + 0.10*rng.Float64(),
	})
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:        "dspuser",
		Count:       1,
		Period:      periodDist(rng, 18, 20, 22, 26),
		Utilization: 0.35 + 0.15*rng.Float64(),
		Accel:       "dsp",
		AccelShare:  0.70 + 0.15*rng.Float64(),
	})
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:        "hot",
		Count:       1 + rng.Intn(2),
		Period:      periodDist(rng, 2, 3, 3, 4),
		Utilization: 0.06 + 0.06*rng.Float64(),
		Accel:       "gpu",
		AccelShare:  0.40 + 0.20*rng.Float64(),
	})
	horizon := sc.Duration.Std()
	if rng.Intn(2) == 0 {
		sc.Churn = append(sc.Churn, scenario.ChurnPhase{
			At:          spec.Duration(horizon / 6),
			Every:       spec.Duration(horizon / 5),
			Action:      "ping_pong",
			Count:       1 + rng.Intn(3),
			Utilization: 0.02 + 0.04*rng.Float64(),
			Period:      periodDist(rng, 4, 8, 10, 25),
			Accel:       "gpu",
			AccelShare:  0.3,
		})
	}
}

// genSteal builds the work-stealing stress pattern. Stealing only exists
// under the global mapping, so the shape overrides any partitioned draw;
// the idle majority pads the task-id space so the heavy tasks land on a
// strict subset of the release shards (home shard = id mod shard count).
func genSteal(rng *rand.Rand, sc *scenario.Scenario) {
	sc.Mapping = ""
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:         "heavy",
		Count:        2 + rng.Intn(3),
		Period:       periodDist(rng, 1, 2, 2, 4),
		Utilization:  0.25 + 0.15*rng.Float64(),
		OffsetJitter: rng.Intn(2) == 0,
	})
	sc.Groups = append(sc.Groups, scenario.TaskGroup{
		Name:        "idle",
		Count:       6 + rng.Intn(8),
		Period:      periodDist(rng, 40, 60, 80, 120),
		Utilization: 0.002 + 0.004*rng.Float64(),
	})
	if rng.Intn(2) == 0 {
		genTopics(rng, sc, 1)
	}
	horizon := sc.Duration.Std()
	sc.Churn = append(sc.Churn, scenario.ChurnPhase{
		At:     spec.Duration(horizon / 8),
		Every:  spec.Duration(horizon / 6),
		Action: "retune",
		Count:  2 + rng.Intn(3),
	})
	if rng.Intn(2) == 0 {
		sc.Churn = append(sc.Churn, scenario.ChurnPhase{
			At:          spec.Duration(horizon / 4),
			Every:       spec.Duration(horizon / 5),
			Action:      "ping_pong",
			Count:       2 + rng.Intn(3),
			Utilization: 0.01 + 0.02*rng.Float64(),
			Period:      periodDist(rng, 3, 6, 8, 20),
		})
	}
	maybeFailures(rng, sc)
}

func genCluster(rng *rand.Rand, sc *scenario.Scenario) {
	n := 2 + rng.Intn(2)
	ns := &scenario.NodesSpec{Count: n}
	if rng.Intn(2) == 0 {
		ns.LossRate = 0.02 + 0.08*rng.Float64()
	}
	if rng.Intn(3) == 0 {
		ns.ReorderRate = 0.01 + 0.04*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		ns.SyncInterval = spec.Duration(durBetween(rng, 5*time.Millisecond, 20*time.Millisecond))
		skews := make([]spec.Duration, n)
		for i := 1; i < n; i++ {
			skews[i] = spec.Duration(time.Duration(rng.Intn(200)) * time.Microsecond)
		}
		ns.ClockSkew = skews
	}
	sc.Nodes = ns
	// One group per node: every member must host at least one task or its
	// application fails to build.
	for i := 0; i < n; i++ {
		sc.Groups = append(sc.Groups, scenario.TaskGroup{
			Name:        fmt.Sprintf("g%d", i),
			Count:       1 + rng.Intn(3),
			Period:      periodDist(rng, 2, 6, 15, 50),
			Utilization: 0.02 + 0.05*rng.Float64(),
			Node:        i,
		})
	}
	// At least one topic crosses nodes so the data plane carries frames.
	pubNodes := []int{rng.Intn(n)}
	subNodes := []int{(pubNodes[0] + 1) % n}
	if rng.Intn(2) == 0 {
		pubNodes = append(pubNodes, rng.Intn(n))
	}
	sc.Topics = append(sc.Topics, scenario.TopicShape{
		Name:          "wire",
		Count:         1 + rng.Intn(2),
		Pubs:          1 + rng.Intn(2),
		Subs:          1 + rng.Intn(2),
		Capacity:      8 + rng.Intn(25),
		PublishPeriod: ms(2 + rng.Intn(5)),
		ConsumePeriod: ms(3 + rng.Intn(8)),
		PubNodes:      pubNodes,
		SubNodes:      subNodes,
	})
	if rng.Intn(2) == 0 {
		horizon := sc.Duration.Std()
		sc.Churn = append(sc.Churn, scenario.ChurnPhase{
			At:          spec.Duration(horizon / 5),
			Every:       spec.Duration(horizon / 4),
			Action:      "cluster",
			Count:       1 + rng.Intn(3),
			Utilization: 0.01 + 0.02*rng.Float64(),
		})
	}
}

// clampTasks trims group counts and topic fan-in/out until the static task
// count fits the budget. Deterministic: always trims the current largest
// contributor.
func clampTasks(sc *scenario.Scenario, budget int) {
	for sc.TaskCount() > budget {
		bigGroup, bigTopic, most := -1, -1, 0
		for i := range sc.Groups {
			if sc.Groups[i].Count > most && sc.Groups[i].Count > 1 {
				most, bigGroup, bigTopic = sc.Groups[i].Count, i, -1
			}
		}
		for i := range sc.Topics {
			tp := &sc.Topics[i]
			if n := tp.Count * (tp.Pubs + tp.Subs); n > most && (tp.Count > 1 || tp.Pubs > 1 || tp.Subs > 1) {
				most, bigGroup, bigTopic = n, -1, i
			}
		}
		switch {
		case bigGroup >= 0:
			sc.Groups[bigGroup].Count--
		case bigTopic >= 0:
			tp := &sc.Topics[bigTopic]
			switch {
			case tp.Count > 1:
				tp.Count--
			case tp.Pubs >= tp.Subs && tp.Pubs > 1:
				tp.Pubs--
			case tp.Subs > 1:
				tp.Subs--
			}
		default:
			return // nothing left to trim
		}
	}
}

// scaleUtilisation rescales group utilisations so no node demands more
// than frac of its workers — admission headroom for churn to fight over.
func scaleUtilisation(sc *scenario.Scenario, frac float64) {
	perNode := map[int]float64{}
	for i := range sc.Groups {
		perNode[sc.Groups[i].Node] += float64(sc.Groups[i].Count) * sc.Groups[i].Utilization
	}
	worst := 1.0
	for _, u := range perNode { //yasmin:orderinvariant max over nodes is order-independent
		if f := u / (frac * float64(sc.Workers)); f > worst {
			worst = f
		}
	}
	if worst <= 1 {
		return
	}
	for i := range sc.Groups {
		sc.Groups[i].Utilization /= worst
		if sc.Groups[i].Utilization < 0.001 {
			sc.Groups[i].Utilization = 0.001
		}
	}
}
