package fuzz

import (
	"encoding/json"
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/scenario"
)

// Predicate reports whether a candidate scenario still exhibits the
// behaviour being minimised (typically "the checker flags a violation").
// It must be deterministic for a given scenario — Shrink caches verdicts
// by serialized form and re-runs nothing it has already judged.
type Predicate func(*scenario.Scenario) bool

// ShrinkOpts bounds the search.
type ShrinkOpts struct {
	// MaxRuns caps predicate evaluations (default 400). The shrinker is
	// greedy — it keeps the first reduction that still fails — so the cap
	// bounds worst-case work, not result quality on typical reproducers.
	MaxRuns int
}

func (o *ShrinkOpts) maxRuns() int {
	if o.MaxRuns > 0 {
		return o.MaxRuns
	}
	return 400
}

// Shrink minimises a failing scenario with delta debugging: list elements
// (groups, topics, churn phases, accel pools) are dropped ddmin-style —
// halves first, then single elements — and surviving scalars are reduced
// (counts and fan-in/out toward 1, duration toward a floor, optional
// features toward absent). Every candidate is validated before the
// predicate runs; invalid candidates are skipped, so the result is always
// a valid scenario. Returns the smallest failing scenario found and the
// number of predicate evaluations spent. The input scenario must satisfy
// pred (Shrink panics otherwise — a non-failing "reproducer" means the
// caller lost determinism, and minimising it would be meaningless).
func Shrink(sc *scenario.Scenario, pred Predicate, opts ShrinkOpts) (*scenario.Scenario, int) {
	if !pred(sc) {
		panic(fmt.Sprintf("fuzz: Shrink of %s: predicate does not fail on the input scenario", sc.Name))
	}
	runs := 0
	budget := opts.maxRuns()
	cache := map[string]bool{key(sc): true}

	// check evaluates one candidate, consulting the cache and budget.
	check := func(cand *scenario.Scenario) bool {
		if cand.Validate() != nil {
			return false
		}
		k := key(cand)
		if v, ok := cache[k]; ok {
			return v
		}
		if runs >= budget {
			return false
		}
		runs++
		v := pred(cand)
		cache[k] = v
		return v
	}

	cur := clone(sc)
	// Alternate structural drops and scalar reductions until a full pass
	// changes nothing (or the budget is gone).
	for changed := true; changed && runs < budget; {
		changed = false
		if shrinkLists(cur, check) {
			changed = true
		}
		if shrinkScalars(cur, check) {
			changed = true
		}
	}
	return cur, runs
}

// clone deep-copies a scenario through its JSON form (every field is
// serialisable by construction — the YAML loader builds the same struct).
func clone(sc *scenario.Scenario) *scenario.Scenario {
	b, err := json.Marshal(sc)
	if err != nil {
		panic(fmt.Sprintf("fuzz: clone marshal: %v", err))
	}
	out := &scenario.Scenario{}
	if err := json.Unmarshal(b, out); err != nil {
		panic(fmt.Sprintf("fuzz: clone unmarshal: %v", err))
	}
	return out
}

// key is the cache identity of a candidate.
func key(sc *scenario.Scenario) string {
	b, err := json.Marshal(sc)
	if err != nil {
		panic(fmt.Sprintf("fuzz: key marshal: %v", err))
	}
	return string(b)
}

// shrinkLists runs one ddmin pass over every list-valued field. Returns
// true if anything was removed.
func shrinkLists(cur *scenario.Scenario, check func(*scenario.Scenario) bool) bool {
	changed := false
	if ddminList(cur, len(cur.Churn), check,
		func(sc *scenario.Scenario, keep []int) { sc.Churn = pick(sc.Churn, keep) }) {
		changed = true
	}
	if ddminList(cur, len(cur.Topics), check,
		func(sc *scenario.Scenario, keep []int) { sc.Topics = pick(sc.Topics, keep) }) {
		changed = true
	}
	if ddminList(cur, len(cur.Groups), check,
		func(sc *scenario.Scenario, keep []int) { sc.Groups = pick(sc.Groups, keep) }) {
		changed = true
	}
	// Dropping a pool only validates once no group references it, so pools
	// shrink after groups.
	if ddminList(cur, len(cur.Accels), check,
		func(sc *scenario.Scenario, keep []int) { sc.Accels = pick(sc.Accels, keep) }) {
		changed = true
	}
	return changed
}

// pick returns the elements of xs at the kept indices, in order.
func pick[T any](xs []T, keep []int) []T {
	out := make([]T, 0, len(keep))
	for _, i := range keep {
		out = append(out, xs[i])
	}
	return out
}

// ddminList removes elements of one n-element list: first complement-of-half
// chunks (classic ddmin), then single elements. apply rebuilds the candidate
// from the kept index set. Greedy: the first failing reduction is adopted
// and the pass restarts on the smaller list.
func ddminList(cur *scenario.Scenario, n int, check func(*scenario.Scenario) bool,
	apply func(*scenario.Scenario, []int)) bool {
	if n == 0 {
		return false
	}
	changed := false
	kept := make([]int, n)
	for i := range kept {
		kept[i] = i
	}
	for chunk := (len(kept) + 1) / 2; chunk >= 1; {
		removedAny := false
		for start := 0; start < len(kept); start += chunk {
			end := start + chunk
			if end > len(kept) {
				end = len(kept)
			}
			rest := append(append([]int{}, kept[:start]...), kept[end:]...)
			cand := clone(cur)
			apply(cand, rest)
			if check(cand) {
				*cur = *cand
				kept = rangeInts(len(rest))
				changed, removedAny = true, true
				break // restart the scan on the reduced list
			}
		}
		if !removedAny {
			if chunk == 1 {
				break
			}
			chunk = (chunk + 1) / 2
			if chunk < 1 {
				chunk = 1
			}
		} else {
			chunk = (len(kept) + 1) / 2
			if chunk < 1 {
				chunk = 1
			}
		}
	}
	return changed
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// shrinkScalars reduces surviving magnitudes: group/topic/churn counts and
// fan-in/out toward 1, duration toward 20ms by halving, and optional
// features (failure injection, jitter, deadline ratio, second accel stage,
// node spec extras) toward absent. One pass; returns true if any reduction
// stuck.
func shrinkScalars(cur *scenario.Scenario, check func(*scenario.Scenario) bool) bool {
	changed := false
	try := func(mut func(*scenario.Scenario)) {
		cand := clone(cur)
		mut(cand)
		if key(cand) == key(cur) {
			return
		}
		if check(cand) {
			*cur = *cand
			changed = true
		}
	}

	for gi := range cur.Groups {
		gi := gi
		for cur.Groups[gi].Count > 1 {
			before := cur.Groups[gi].Count
			try(func(sc *scenario.Scenario) { sc.Groups[gi].Count = (sc.Groups[gi].Count + 1) / 2 })
			if cur.Groups[gi].Count == before {
				break
			}
		}
		try(func(sc *scenario.Scenario) { sc.Groups[gi].OffsetJitter = false })
		try(func(sc *scenario.Scenario) { sc.Groups[gi].DeadlineRatio = 0 })
		try(func(sc *scenario.Scenario) { sc.Groups[gi].Accel2 = ""; sc.Groups[gi].Accel2Share = 0 })
		try(func(sc *scenario.Scenario) {
			sc.Groups[gi].Accel = ""
			sc.Groups[gi].AccelShare = 0
			sc.Groups[gi].Accel2 = ""
			sc.Groups[gi].Accel2Share = 0
		})
	}
	for ti := range cur.Topics {
		ti := ti
		for _, f := range []func(*scenario.TopicShape) *int{
			func(tp *scenario.TopicShape) *int { return &tp.Count },
			func(tp *scenario.TopicShape) *int { return &tp.Pubs },
			func(tp *scenario.TopicShape) *int { return &tp.Subs },
		} {
			f := f
			for *f(&cur.Topics[ti]) > 1 {
				before := *f(&cur.Topics[ti])
				try(func(sc *scenario.Scenario) { p := f(&sc.Topics[ti]); *p = (*p + 1) / 2 })
				if *f(&cur.Topics[ti]) == before {
					break
				}
			}
		}
	}
	for ci := range cur.Churn {
		ci := ci
		for cur.Churn[ci].Count > 1 {
			before := cur.Churn[ci].Count
			try(func(sc *scenario.Scenario) { sc.Churn[ci].Count = (sc.Churn[ci].Count + 1) / 2 })
			if cur.Churn[ci].Count == before {
				break
			}
		}
		try(func(sc *scenario.Scenario) { sc.Churn[ci].Every = 0 })
	}
	try(func(sc *scenario.Scenario) { sc.Failures = scenario.Failures{} })
	try(func(sc *scenario.Scenario) { sc.Mapping = "" })
	if cur.Nodes != nil {
		try(func(sc *scenario.Scenario) {
			sc.Nodes.LossRate = 0
			sc.Nodes.ReorderRate = 0
			sc.Nodes.SyncInterval = 0
			sc.Nodes.ClockSkew = nil
		})
	}
	for ms(20) < cur.Duration {
		before := cur.Duration
		try(func(sc *scenario.Scenario) {
			sc.Duration = sc.Duration / 2
			if sc.Duration < ms(20) {
				sc.Duration = ms(20)
			}
		})
		if cur.Duration == before {
			break
		}
	}
	for cur.Workers > 1 {
		before := cur.Workers
		try(func(sc *scenario.Scenario) { sc.Workers-- })
		if cur.Workers == before {
			break
		}
	}
	return changed
}
