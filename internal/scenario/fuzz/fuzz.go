package fuzz

import (
	"fmt"
	"io"

	"github.com/yasmin-rt/yasmin/internal/scenario"
)

// Options configures a Campaign.
type Options struct {
	// N is the number of scenarios to generate and run (default 50).
	N int
	// Seed is the campaign base seed: scenario i uses Seed+i.
	Seed int64
	// Config bounds the generator.
	Config Config
	// Shrink minimises every failing scenario before reporting it.
	Shrink bool
	// ShrinkRuns caps predicate evaluations per shrink (default 400).
	ShrinkRuns int
	// Diff additionally runs every (single-node) scenario on the OS
	// backend and diffs the checker-visible behaviour. Campaign output is
	// byte-deterministic for a fixed (Seed, N, Config) without Diff; with
	// it, tolerance breaches depend on host timing.
	Diff bool
	// Out receives one line per scenario plus a trailer (nil = silent).
	Out io.Writer
}

func (o *Options) n() int {
	if o.N > 0 {
		return o.N
	}
	return 50
}

// Failure is one minimised finding of a campaign.
type Failure struct {
	// Seed is the generator seed that produced the scenario.
	Seed int64
	// Scenario is the failing scenario — shrunk when Options.Shrink is set,
	// otherwise as generated.
	Scenario *scenario.Scenario
	// Violations is what the checker reported on the (original) failing run.
	Violations []string
	// ShrinkRuns is how many predicate evaluations the shrink spent (zero
	// when shrinking was off).
	ShrinkRuns int
	// DiffMismatches is set when the failure came from the differential
	// leg rather than the live checker.
	DiffMismatches []string
}

// Result summarises a campaign.
type Result struct {
	Ran      int
	Failures []Failure
	// DiffSkipped counts scenarios the differential leg skipped (cluster
	// shapes when Diff was requested).
	DiffSkipped int
}

// Campaign generates and runs n seeded scenarios, checking every run with
// the live checker (and, with opts.Diff, differentially against the OS
// backend). Failing scenarios are optionally shrunk to minimal reproducers.
// All log output is derived from seeds and counters only — two campaigns
// with the same options produce byte-identical output (without Diff), which
// CI exploits to pin generator determinism.
func Campaign(opts Options) (*Result, error) {
	res := &Result{}
	logf := func(format string, args ...any) {
		if opts.Out != nil {
			fmt.Fprintf(opts.Out, format+"\n", args...)
		}
	}
	for i := 0; i < opts.n(); i++ {
		seed := (opts.Seed + int64(i)) & seedMask
		sc := Gen(seed, opts.Config)
		rep, err := scenario.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("fuzz: seed %d (%s): %w", seed, sc.Name, err)
		}
		res.Ran++
		if len(rep.Violations) > 0 {
			f := Failure{Seed: seed, Scenario: sc, Violations: rep.Violations}
			logf("seed %d %s: %d violations; first: %s", seed, sc.Name, len(rep.Violations), rep.Violations[0])
			if opts.Shrink {
				f.Scenario, f.ShrinkRuns = Shrink(sc, ViolationPredicate(), ShrinkOpts{MaxRuns: opts.ShrinkRuns})
				logf("seed %d %s: shrunk to %d tasks, %d churn phases in %d runs",
					seed, sc.Name, f.Scenario.TaskCount(), len(f.Scenario.Churn), f.ShrinkRuns)
			}
			res.Failures = append(res.Failures, f)
			continue
		}
		if opts.Diff {
			dr, err := RunDiff(sc, DiffOpts{})
			if err != nil {
				return nil, fmt.Errorf("fuzz: seed %d (%s) diff: %w", seed, sc.Name, err)
			}
			if !dr.Skipped && !dr.Ok() {
				// The OS leg is wall-clock: a host load spike can push a
				// timing-derived counter past tolerance without any real
				// divergence. Deterministic mismatches reproduce; one retry
				// filters the spikes.
				dr, err = RunDiff(sc, DiffOpts{})
				if err != nil {
					return nil, fmt.Errorf("fuzz: seed %d (%s) diff: %w", seed, sc.Name, err)
				}
			}
			if dr.Skipped {
				res.DiffSkipped++
			} else if !dr.Ok() {
				logf("seed %d %s: %d differential mismatches; first: %s", seed, sc.Name, len(dr.Mismatches), dr.Mismatches[0])
				res.Failures = append(res.Failures, Failure{Seed: seed, Scenario: sc, DiffMismatches: dr.Mismatches})
				continue
			}
		}
		logf("seed %d %s: ok (%d jobs, %d epochs)", seed, sc.Name, rep.Jobs, rep.Epochs)
	}
	logf("campaign: %d run, %d failing, %d diff-skipped", res.Ran, len(res.Failures), res.DiffSkipped)
	return res, nil
}

// ViolationPredicate returns the standard shrink predicate: the scenario
// runs on the simulation backend and the live checker flags at least one
// violation. Run errors (invalid builds after an aggressive reduction) do
// not count as failures.
func ViolationPredicate() Predicate {
	return func(sc *scenario.Scenario) bool {
		rep, err := scenario.Run(sc)
		return err == nil && len(rep.Violations) > 0
	}
}
