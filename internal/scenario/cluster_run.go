package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/yasmin-rt/yasmin/internal/cluster"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

// runCluster executes a cluster scenario: Nodes.Count co-simulated YASMIN
// instances on one engine (one virtual timeline, each node with its own
// scheduler core and worker set), stitched together by the internal/cluster
// data plane over the deterministic in-memory transport. Cross-node topics
// carry the same sequence-stamped values the single-node checker verifies,
// so per-publisher FIFO is proven end to end across the wire — under
// injected loss/reorder the lossy relaxation admits gaps but still no
// inversions. Churn is cluster-wide two-phase: every firing admits tasks on
// every node atomically at a common cluster epoch.
func runCluster(sc *Scenario, opts RunOpts) (*Report, error) {
	ns := sc.Nodes
	nodes := ns.Count
	if opts.NodeTelemetry != nil && len(opts.NodeTelemetry) != nodes {
		return nil, fmt.Errorf("scenario %s: %d telemetry pipelines for %d nodes", sc.Name, len(opts.NodeTelemetry), nodes)
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	ck := NewChecker()
	ck.SetContext(Context{Scenario: sc.Name, Seed: sc.Seed, Node: -1})

	gspec, gen := sc.buildClusterSpec(rng, ck)
	if err := gspec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: generated cluster spec invalid: %w", sc.Name, err)
	}

	// Per-node churn headroom: the cluster action admits Count tasks on
	// every node per firing, cumulatively.
	headroom := 0
	for i := range sc.Churn {
		cp := &sc.Churn[i]
		reps := 1
		if cp.Every > 0 {
			reps = int(sc.Duration.Std()/cp.Every.Std()) + 1
		}
		headroom += cp.Count * reps
	}

	eng := sim.NewEngine(sc.Seed)
	env, err := rt.NewSimEnv(eng, platform.Generic(nodes*(sc.Workers+1)), nil)
	if err != nil {
		return nil, err
	}

	cl := cluster.New()
	apps := make([]*core.App, nodes)
	peakTasks := 0
	for i := 0; i < nodes; i++ {
		p := gspec.ForNode(i)
		maxTasks := len(p.Tasks) + headroom
		peakTasks += maxTasks
		pending := sc.MaxPendingJobs
		if pending == 0 {
			pending = maxTasks + 4*sc.Workers + 64
		}
		base := i * (sc.Workers + 1)
		wcores := make([]int, sc.Workers)
		for w := range wcores {
			wcores[w] = base + 1 + w
		}
		cfg := core.Config{
			Workers:         sc.Workers,
			SchedulerCore:   base,
			WorkerCores:     wcores,
			Mapping:         core.MappingGlobal,
			Priority:        core.PriorityEDF,
			MaxTasks:        maxTasks,
			MaxChannels:     len(p.Topics) + 1,
			MaxPendingJobs:  pending,
			SchedulerPeriod: sc.SchedulerPeriod.Std(),
		}
		switch sc.Mapping {
		case "partitioned":
			cfg.Mapping = core.MappingPartitioned
		}
		switch sc.Priority {
		case "rm":
			cfg.Priority = core.PriorityRM
		case "dm":
			cfg.Priority = core.PriorityDM
		}
		if opts.NodeTelemetry != nil {
			cfg.Telemetry = opts.NodeTelemetry[i].Blocking()
		}
		app, err := p.Build(cfg, env)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: node %d build: %w", sc.Name, i, err)
		}
		// The instrumented bodies captured node-local CIDs computed at
		// generation time; fail fast if the built projection disagrees.
		for name, cid := range gen.nodeCIDs[i] { //yasmin:orderinvariant fail-fast validation, any mismatch is fatal
			if got := app.TopicID(name); got != cid {
				return nil, fmt.Errorf("scenario %s: node %d: topic %s built as CID %d, bodies captured %d", sc.Name, i, name, got, cid)
			}
		}
		apps[i] = app
		ncfg := cluster.NodeConfig{
			App:          app,
			Env:          env,
			IngressCore:  base, // middleware overhead rides the scheduler core
			SyncInterval: ns.SyncInterval.Std(),
		}
		if i < len(ns.ClockSkew) {
			ncfg.ClockSkew = ns.ClockSkew[i].Std()
		}
		if opts.NodeTelemetry != nil {
			ncfg.Pipeline = opts.NodeTelemetry[i]
		}
		if _, err := cl.AddNode(ncfg); err != nil {
			return nil, fmt.Errorf("scenario %s: node %d: %w", sc.Name, i, err)
		}
	}

	// Wire every cross-node topic: the publishers' nodes forward to every
	// remote subscriber node; the subscribers' nodes provision ingress.
	for _, w := range gen.wires {
		for n := 0; n < nodes; n++ {
			if !w.pubNodes[n] && !w.subNodes[n] {
				continue
			}
			var dests []int
			if w.pubNodes[n] {
				for d := 0; d < nodes; d++ {
					if d != n && w.subNodes[d] {
						dests = append(dests, d)
					}
				}
			}
			remote := false
			if w.subNodes[n] {
				for p := range w.pubNodes { //yasmin:orderinvariant boolean OR
					if p != n {
						remote = true
					}
				}
			}
			if len(dests) == 0 && !remote {
				continue // purely node-local topic
			}
			if err := cl.Node(n).Topic(w.name, dests, remote); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
		}
	}
	cluster.NewMemTransport(cl, cluster.MemOpts{
		Seed:        sc.Seed,
		LossRate:    ns.LossRate,
		ReorderRate: ns.ReorderRate,
	})
	if err := cl.Start(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	events := sc.expandChurn()
	horizon := sc.Duration.Std()
	driver := &clusterDriver{sc: sc, cl: cl, ck: ck, rng: rng}
	var harnessErr error
	env.Spawn("stress-driver", rt.UnpinnedCore, func(c rt.Ctx) {
		started := 0
		for i, app := range apps {
			if err := app.Start(c); err != nil {
				harnessErr = fmt.Errorf("scenario %s: node %d start: %w", sc.Name, i, err)
				for j := 0; j < started; j++ {
					apps[j].Stop(c)
				}
				_ = cl.Close()
				return
			}
			started++
		}
		for _, ev := range events {
			if ev.at >= horizon {
				break
			}
			c.SleepUntil(ev.at)
			driver.fire(c, ev)
		}
		c.SleepUntil(horizon)
		for _, app := range apps {
			app.Stop(c)
		}
		if err := cl.Close(); err != nil && harnessErr == nil {
			harnessErr = fmt.Errorf("scenario %s: cluster close: %w", sc.Name, err)
		}
		for _, app := range apps {
			app.Cleanup(c)
		}
	})

	wall0 := time.Now() //yasmin:wallclock host-side duration report, not simulation state
	if err := eng.RunUntilIdle(); err != nil {
		return nil, fmt.Errorf("scenario %s: engine: %w", sc.Name, err)
	}
	if harnessErr != nil {
		return nil, harnessErr
	}
	wall := time.Since(wall0) //yasmin:wallclock host-side duration report

	violations := ck.FinishCluster(apps)
	// All-or-nothing across the cluster: every node's application epoch
	// must equal the cluster epoch (a node ahead or behind means a commit
	// was not atomic cluster-wide).
	for i, app := range apps {
		if app.Epoch() != int(cl.Epoch()) {
			violations = append(violations, fmt.Sprintf(
				"node %d at epoch %d, cluster at %d (two-phase commit diverged)", i, app.Epoch(), cl.Epoch()))
		}
	}

	rep := &Report{
		Scenario:      sc.Name,
		Seed:          sc.Seed,
		Tasks:         sc.TaskCount(),
		PeakTasks:     peakTasks,
		Workers:       sc.Workers,
		SimDurationNS: int64(horizon),
		WallNS:        wall.Nanoseconds(),
		EngineSteps:   eng.Steps(),
		Published:     ck.Published(),
		Delivered:     ck.Delivered(),
		Epochs:        int(cl.Epoch()),
		Rejections:    driver.rejections,
		Violations:    violations,
	}
	for i, app := range apps {
		nr := NodeReport{
			Node:      i,
			Tasks:     gen.nodeTasks[i],
			Jobs:      app.Recorder().TotalJobs(),
			Misses:    app.Recorder().TotalMisses(),
			NodeStats: cl.Node(i).Stats(),
		}
		rep.Nodes = append(rep.Nodes, nr)
		rep.Jobs += nr.Jobs
		rep.Misses += nr.Misses
		rep.Overruns += app.Overruns()
		rep.Retires += len(app.Recorder().Retires())
		rep.Sched.Add(app.SchedStats())
	}
	if wall > 0 {
		rep.JobsPerWallSec = float64(rep.Jobs) / wall.Seconds()
	}
	return rep, nil
}

// clusterGen carries what the cluster runner needs from spec generation.
type clusterGen struct {
	// nodeCIDs maps, per node, topic name -> the CID the topic will get in
	// that node's ForNode projection. Computed at generation time from the
	// positional contract (projections keep topics in declaration order and
	// have no channels), re-verified against the built apps.
	nodeCIDs []map[string]core.CID
	// nodeTasks counts statically declared tasks per node.
	nodeTasks []int
	// wires lists every generated topic with its endpoint node sets.
	wires []topicWire
}

// topicWire is one topic's placement: which nodes host publishers and
// which host subscribers.
type topicWire struct {
	name     string
	pubNodes map[int]bool
	subNodes map[int]bool
}

// buildClusterSpec generates the global (cluster-wide) declarative
// application with node placements, mirroring buildSpec. Instrumented
// endpoint bodies capture the node-local CID of their topic, not the
// global one — ForNode renumbers topics per projection.
func (sc *Scenario) buildClusterSpec(rng *rand.Rand, ck *Checker) (*spec.Spec, *clusterGen) {
	ns := sc.Nodes
	nodes := ns.Count
	s := &spec.Spec{Name: sc.Name, Nodes: nodes}
	gen := &clusterGen{
		nodeCIDs:  make([]map[string]core.CID, nodes),
		nodeTasks: make([]int, nodes),
	}
	for i := range gen.nodeCIDs {
		gen.nodeCIDs[i] = make(map[string]core.CID)
	}

	cores := make([]int, nodes)
	nextCore := func(node int) int {
		c := cores[node] % sc.Workers
		cores[node]++
		return c
	}

	for gi := range sc.Groups {
		g := &sc.Groups[gi]
		for i := 0; i < g.Count; i++ {
			period := g.Period.sample(rng)
			wcet := time.Duration(g.Utilization * float64(period))
			if wcet < time.Microsecond {
				wcet = time.Microsecond
			}
			t := spec.TaskSpec{
				Name:     fmt.Sprintf("%s-%d", g.Name, i),
				Period:   spec.Duration(period),
				Core:     nextCore(g.Node),
				Node:     g.Node,
				Versions: []spec.VersionSpec{{WCET: spec.Duration(wcet)}},
			}
			if g.DeadlineRatio > 0 {
				t.Deadline = spec.Duration(float64(period) * g.DeadlineRatio)
			}
			if g.OffsetJitter {
				t.Offset = spec.Duration(rng.Int63n(int64(period)))
			}
			s.Tasks = append(s.Tasks, t)
		}
	}

	lossy := ns.lossy()
	for si := range sc.Topics {
		sh := &sc.Topics[si]
		pol, _ := core.ParsePolicy(sh.Policy)
		pubNode := func(p int) int {
			if len(sh.PubNodes) == 0 {
				return 0
			}
			return sh.PubNodes[p%len(sh.PubNodes)]
		}
		subNode := func(su int) int {
			if len(sh.SubNodes) == 0 {
				return 0
			}
			return sh.SubNodes[su%len(sh.SubNodes)]
		}
		for k := 0; k < sh.Count; k++ {
			topicName := fmt.Sprintf("%s-%d", sh.Name, k)
			ti := ck.addTopic(topicName, pol, sh.Capacity, sh.Pubs, sh.Subs)
			w := topicWire{name: topicName, pubNodes: map[int]bool{}, subNodes: map[int]bool{}}
			for p := 0; p < sh.Pubs; p++ {
				w.pubNodes[pubNode(p)] = true
			}
			for su := 0; su < sh.Subs; su++ {
				w.subNodes[subNode(su)] = true
			}
			cross := false
			for p := range w.pubNodes { //yasmin:orderinvariant boolean OR
				for su := range w.subNodes { //yasmin:orderinvariant boolean OR
					if p != su {
						cross = true
					}
				}
			}
			if cross && lossy {
				// Frames of this topic ride the faulty wire: gaps are legal,
				// inversions still are not.
				ck.setLossy(ti)
			}
			// Node-local CIDs follow the projection's positional contract:
			// the topic's index among topics present on that node.
			for n := 0; n < nodes; n++ {
				if w.pubNodes[n] || w.subNodes[n] {
					gen.nodeCIDs[n][topicName] = core.CID(len(gen.nodeCIDs[n]))
				}
			}
			ts := spec.TopicSpec{
				Name:     topicName,
				Capacity: sh.Capacity,
				Policy:   sh.Policy,
			}
			for p := 0; p < sh.Pubs; p++ {
				node := pubNode(p)
				name := fmt.Sprintf("%s-pub%d", topicName, p)
				ts.Pubs = append(ts.Pubs, name)
				s.Tasks = append(s.Tasks, spec.TaskSpec{
					Name:   name,
					Period: sh.PublishPeriod,
					Offset: spec.Duration(rng.Int63n(int64(sh.PublishPeriod.Std()))),
					Core:   nextCore(node),
					Node:   node,
					Versions: []spec.VersionSpec{{
						Fn: pubBody(ck, ti, p, gen.nodeCIDs[node][topicName]),
					}},
				})
			}
			for su := 0; su < sh.Subs; su++ {
				node := subNode(su)
				name := fmt.Sprintf("%s-sub%d", topicName, su)
				ts.Subs = append(ts.Subs, name)
				s.Tasks = append(s.Tasks, spec.TaskSpec{
					Name:   name,
					Period: sh.ConsumePeriod,
					Offset: spec.Duration(rng.Int63n(int64(sh.ConsumePeriod.Std()))),
					Core:   nextCore(node),
					Node:   node,
					Versions: []spec.VersionSpec{{
						Fn: subBody(ck, ti, su, gen.nodeCIDs[node][topicName]),
					}},
				})
			}
			s.Topics = append(s.Topics, ts)
			gen.wires = append(gen.wires, w)
		}
	}

	for i := range s.Tasks {
		gen.nodeTasks[s.Tasks[i].Node]++
	}
	return s, gen
}

// clusterDriver fires the cluster-wide churn transactions.
type clusterDriver struct {
	sc  *Scenario
	cl  *cluster.Cluster
	ck  *Checker
	rng *rand.Rand

	rejections int64
	generation int
}

// fire runs one cluster churn firing: admit Count fresh tasks on every
// node in a single two-phase transaction. All nodes commit at a common
// cluster epoch or none do; a rejection must leave every node untouched.
func (d *clusterDriver) fire(c rt.Ctx, ev churnEvent) {
	cp := &d.sc.Churn[ev.phase]
	g := d.generation
	d.generation++
	dist := cp.Period
	if dist.Min == 0 && dist.Max == 0 && len(dist.Choices) == 0 {
		dist = Dist{Min: spec.Duration(10 * time.Millisecond), Max: spec.Duration(100 * time.Millisecond)}
	}
	util := cp.Utilization
	if util == 0 {
		util = 0.01
	}
	nodes := len(d.cl.Nodes())
	before := int(d.cl.Epoch())
	txs := make([]cluster.NodeTx, 0, nodes)
	for node := 0; node < nodes; node++ {
		node := node
		txs = append(txs, cluster.NodeTx{Node: node, Fn: func(tx *core.Reconfig) error {
			for i := 0; i < cp.Count; i++ {
				name := fmt.Sprintf("cchurn-g%d-n%d-%d", g, node, i)
				period := dist.sample(d.rng)
				wcet := time.Duration(util * float64(period))
				if wcet < time.Microsecond {
					wcet = time.Microsecond
				}
				id, err := tx.AddTask(core.TData{Name: name, Period: period, VirtCore: i % d.sc.Workers})
				if err != nil {
					return err
				}
				w := wcet
				body := func(x *core.ExecCtx, _ any) error { return x.Compute(w) }
				if _, err := tx.AddVersion(id, body, nil, core.VSelect{WCET: wcet}); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	err := d.cl.Reconfigure(c, txs)
	if err != nil {
		if errors.Is(err, core.ErrNotSchedulable) {
			d.rejections++
		} else {
			d.ck.violationf("cluster churn at %v failed unexpectedly: %v", ev.at, err)
		}
	}
	d.ck.noteAttempt(admissionAttempt{
		at:          ev.at,
		action:      "cluster",
		err:         err,
		epochBefore: before,
		epochAfter:  int(d.cl.Epoch()),
	})
}
