package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/yasmin-rt/yasmin/internal/cluster"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Report is the machine-readable outcome of one scenario run — the
// BENCH_scale.json payload.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Tasks is the statically declared task count; PeakTasks adds churn
	// headroom actually provisioned.
	Tasks     int `json:"tasks"`
	PeakTasks int `json:"peak_tasks"`
	Workers   int `json:"workers"`

	SimDurationNS int64  `json:"sim_duration_ns"`
	WallNS        int64  `json:"wall_ns"`
	EngineSteps   uint64 `json:"engine_steps"`

	Jobs     int64 `json:"jobs"`
	Misses   int64 `json:"misses"`
	Overruns int64 `json:"overruns"`

	Published int64 `json:"published"`
	Delivered int64 `json:"delivered"`

	// Accelerator arbitration counters (zero without accels): acquisitions
	// (free-instance takes plus direct grants), parks, PIP boosts and the
	// longest park→grant/acquire wait observed.
	AccelAcquires  int64 `json:"accel_acquires,omitempty"`
	AccelParks     int64 `json:"accel_parks,omitempty"`
	AccelBoosts    int64 `json:"accel_boosts,omitempty"`
	AccelMaxWaitNS int64 `json:"accel_max_wait_ns,omitempty"`

	// Sched is the sharded scheduler core's counter snapshot (summed over
	// nodes in cluster mode): work-stealing traffic, dispatcher migrations,
	// idle-list wakes, preemption signalling and schedView publications.
	Sched trace.SchedStats `json:"sched"`

	Epochs     int   `json:"epochs"`
	Retires    int   `json:"retires"`
	Rejections int64 `json:"rejections"`
	// TaskErrors is the middleware's count of failed jobs (equals the
	// checker's injected count on a clean run).
	TaskErrors int64 `json:"task_errors,omitempty"`

	JobsPerWallSec float64  `json:"jobs_per_wall_sec"`
	Violations     []string `json:"violations"`

	// Topics is the per-topic data-plane accounting (RunOpts.PerTopic;
	// the differential runner compares it between backends).
	Topics []TopicAccount `json:"topics,omitempty"`

	// Nodes is the per-node breakdown of a cluster run (nil single-node);
	// top-level Jobs/Misses/Epochs then aggregate over the cluster, and
	// Epochs is the common cluster epoch every node committed.
	Nodes []NodeReport `json:"nodes,omitempty"`
}

// NodeReport is one cluster node's share of a scenario run: its scheduler
// counters plus the data-plane accounting of its cluster adapter.
type NodeReport struct {
	Node   int   `json:"node"`
	Tasks  int   `json:"tasks"`
	Jobs   int64 `json:"jobs"`
	Misses int64 `json:"misses"`
	cluster.NodeStats
}

// RunOpts carries optional harness wiring for RunWith.
type RunOpts struct {
	// Telemetry, when set, streams every trace record of the run into the
	// given consumer as it is produced (see core.Config.Telemetry). Wire a
	// *telemetry.Pipeline here to export the run as JSONL and re-verify it
	// offline with CheckStream. Ignored in cluster mode (use NodeTelemetry).
	Telemetry trace.Stream
	// NodeTelemetry supplies one pipeline per cluster node (index = node
	// id; construct each with telemetry.Options{Node: id} so its export
	// carries the stamp). Every node's trace records, frame events and
	// cluster-epoch marks flow through its own pipeline, and the per-node
	// files reconcile offline with CheckStreams. nil disables; any other
	// length must equal the node count.
	NodeTelemetry []*telemetry.Pipeline
	// PerTopic adds per-topic accounting to the report (Report.Topics) —
	// the differential runner diffs it between the Sim and OS backends.
	PerTopic bool
	// OS configures the wall-clock backend; RunWith ignores it.
	OS OSRunOpts
}

// OSRunOpts tunes RunOS.
type OSRunOpts struct {
	// Spin selects busy-wait Compute (really burns CPU); the default
	// sleeps instead, which models the load without needing idle cores.
	Spin bool
	// Pin wires threads to OS threads and attempts CPU affinity (needs
	// privileges / enough cores; best-effort).
	Pin bool
}

// runBackend is what a scenario execution backend must provide: an
// environment to build the application in, a way to drive the world to
// completion, and (sim only) an engine-step counter.
type runBackend struct {
	env   rt.Env
	drive func() error
	steps func() uint64
}

// Run executes the scenario on the deterministic simulation backend and
// returns the report; the error covers harness failures (a violation-laden
// run still returns its report).
func Run(sc *Scenario) (*Report, error) { return RunWith(sc, RunOpts{}) }

// RunWith is Run with harness options.
func RunWith(sc *Scenario, opts RunOpts) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Nodes != nil {
		return runCluster(sc, opts)
	}
	eng := sim.NewEngine(sc.Seed)
	env, err := rt.NewSimEnv(eng, platform.Generic(sc.Workers+1), nil)
	if err != nil {
		return nil, err
	}
	return runScenario(sc, opts, runBackend{env: env, drive: eng.RunUntilIdle, steps: eng.Steps})
}

// runScenario executes a validated single-node scenario on the given
// backend. The spec/driver rng is seeded from the scenario seed alone and
// only ever touched by spec generation and the single driver thread, so
// driver decisions (admitted task shapes, retune picks) are identical
// between the Sim and OS backends; task bodies draw from their own locked
// stream (see lockedUnitRand).
func runScenario(sc *Scenario, opts RunOpts, bk runBackend) (*Report, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	ck := NewChecker()
	ck.accelWaitBound = sc.AccelWaitBound.Std()
	ck.SetContext(Context{Scenario: sc.Name, Seed: sc.Seed, Node: -1})

	s, gen := sc.buildSpec(rng, ck)
	maxTasks := sc.TaskCount() + sc.churnHeadroom()
	pending := sc.MaxPendingJobs
	if pending == 0 {
		pending = maxTasks + 4*sc.Workers + 64
	}
	cfg := core.Config{
		Workers:         sc.Workers,
		Mapping:         core.MappingGlobal,
		Priority:        core.PriorityEDF,
		MaxTasks:        maxTasks,
		MaxChannels:     len(s.Topics) + 1,
		MaxPendingJobs:  pending,
		SchedulerPeriod: sc.SchedulerPeriod.Std(),
		// The checker replays the arbitration events.
		RecordAccel: len(sc.Accels) > 0,
		Telemetry:   opts.Telemetry,
	}
	switch sc.Mapping {
	case "partitioned":
		cfg.Mapping = core.MappingPartitioned
	}
	switch sc.Priority {
	case "rm":
		cfg.Priority = core.PriorityRM
	case "dm":
		cfg.Priority = core.PriorityDM
	}

	app, err := s.Build(cfg, bk.env)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: build: %w", sc.Name, err)
	}
	// The instrumented bodies captured spec-layer positional CIDs; fail
	// fast if the built App disagrees (a silent mismatch would turn every
	// publish/take into misleading checker violations).
	for name, cid := range gen.topicCIDs { //yasmin:orderinvariant fail-fast validation, any mismatch is fatal
		if got := app.TopicID(name); got != cid {
			return nil, fmt.Errorf("scenario %s: topic %s built as CID %d, bodies captured %d", sc.Name, name, got, cid)
		}
	}

	events := sc.expandChurn()
	horizon := sc.Duration.Std()
	driver := &churnDriver{sc: sc, app: app, ck: ck, rng: rng, gen: gen,
		frand: lockedUnitRand(sc.Seed)}
	var harnessErr error
	bk.env.Spawn("stress-driver", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			harnessErr = fmt.Errorf("scenario %s: start: %w", sc.Name, err)
			return
		}
		for _, ev := range events {
			if ev.at >= horizon {
				break
			}
			c.SleepUntil(ev.at)
			driver.fire(c, ev)
		}
		c.SleepUntil(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})

	wall0 := time.Now() //yasmin:wallclock host-side duration report, not simulation state
	if err := bk.drive(); err != nil {
		return nil, fmt.Errorf("scenario %s: engine: %w", sc.Name, err)
	}
	if harnessErr != nil {
		return nil, harnessErr
	}
	wall := time.Since(wall0) //yasmin:wallclock host-side duration report

	rep := &Report{
		Scenario:      sc.Name,
		Seed:          sc.Seed,
		Tasks:         sc.TaskCount(),
		PeakTasks:     maxTasks,
		Workers:       sc.Workers,
		SimDurationNS: int64(horizon),
		WallNS:        wall.Nanoseconds(),
		EngineSteps:   bk.steps(),
		Jobs:          app.Recorder().TotalJobs(),
		Misses:        app.Recorder().TotalMisses(),
		Overruns:      app.Overruns(),
		Sched:         app.SchedStats(),
		Published:     ck.Published(),
		Delivered:     ck.Delivered(),
		Epochs:        app.Epoch(),
		Retires:       len(app.Recorder().Retires()),
		Rejections:    driver.rejections,
		TaskErrors:    app.TaskErrors(),
		Violations:    ck.Finish(app),
	}
	if opts.PerTopic {
		rep.Topics = ck.TopicTotals()
	}
	st := ck.AccelStats()
	rep.AccelAcquires = st.Acquires
	rep.AccelParks = st.Parks
	rep.AccelBoosts = st.Boosts
	rep.AccelMaxWaitNS = st.MaxWait.Nanoseconds()
	if wall > 0 {
		rep.JobsPerWallSec = float64(rep.Jobs) / wall.Seconds()
	}
	return rep, nil
}

// genState carries name lists the churn driver needs from spec generation.
type genState struct {
	groupTasks []string                 // plain compute task names
	groupData  map[string]spec.TaskSpec // name -> declared timing (for retunes)
	modes      []string                 // installed mode names, cycle order
	topicCIDs  map[string]core.CID      // instrumented topic name -> captured CID
}

// buildSpec generates the declarative application (group tasks, topic
// meshes with instrumented endpoints, mode presets) from the scenario.
func (sc *Scenario) buildSpec(rng *rand.Rand, ck *Checker) (*spec.Spec, *genState) {
	s := &spec.Spec{Name: sc.Name}
	gen := &genState{
		groupData: make(map[string]spec.TaskSpec),
		topicCIDs: make(map[string]core.CID),
	}

	core0 := 0
	nextCore := func() int {
		c := core0 % sc.Workers
		core0++
		return c
	}

	for ai := range sc.Accels {
		a := &sc.Accels[ai]
		s.Accels = append(s.Accels, spec.AccelSpec{Name: a.Name, Count: a.Count})
	}

	for gi := range sc.Groups {
		g := &sc.Groups[gi]
		for i := 0; i < g.Count; i++ {
			period := g.Period.sample(rng)
			wcet := time.Duration(g.Utilization * float64(period))
			if wcet < time.Microsecond {
				wcet = time.Microsecond
			}
			v := spec.VersionSpec{WCET: spec.Duration(wcet)}
			if g.Accel != "" {
				share := g.AccelShare
				if share == 0 {
					share = 0.5
				}
				v.Accel = g.Accel
				v.AccelCS = spec.Duration(float64(wcet) * share)
				if g.Accel2 != "" {
					share2 := g.Accel2Share
					if share2 == 0 {
						share2 = 0.25
					}
					cs1 := v.AccelCS.Std()
					cs2 := time.Duration(float64(wcet) * share2)
					// Admission sees one conservative blocking term
					// covering both sections.
					v.AccelCS = spec.Duration(cs1 + cs2)
					v.Fn = chainBody(wcet, cs1, cs2, g.Accel2)
				}
			}
			t := spec.TaskSpec{
				Name:     fmt.Sprintf("%s-%d", g.Name, i),
				Period:   spec.Duration(period),
				Core:     nextCore(),
				Versions: []spec.VersionSpec{v},
			}
			if g.DeadlineRatio > 0 {
				t.Deadline = spec.Duration(float64(period) * g.DeadlineRatio)
			}
			if g.OffsetJitter {
				t.Offset = spec.Duration(rng.Int63n(int64(period)))
			}
			s.Tasks = append(s.Tasks, t)
			gen.groupTasks = append(gen.groupTasks, t.Name)
			gen.groupData[t.Name] = t
		}
	}

	for si := range sc.Topics {
		sh := &sc.Topics[si]
		pol, _ := core.ParsePolicy(sh.Policy)
		for k := 0; k < sh.Count; k++ {
			topicName := fmt.Sprintf("%s-%d", sh.Name, k)
			ti := ck.addTopic(topicName, pol, sh.Capacity, sh.Pubs, sh.Subs)
			ts := spec.TopicSpec{
				Name:     topicName,
				Capacity: sh.Capacity,
				Policy:   sh.Policy,
			}
			// Reserve the spec slot first so the CID the instrumented
			// bodies capture comes from the spec layer's documented
			// positional contract (TopicID); the endpoint lists are filled
			// in below and Run re-verifies every CID against the built App
			// before starting.
			s.Topics = append(s.Topics, ts)
			tsIdx := len(s.Topics) - 1
			cid := s.TopicID(topicName)
			gen.topicCIDs[topicName] = cid
			for p := 0; p < sh.Pubs; p++ {
				name := fmt.Sprintf("%s-pub%d", topicName, p)
				ts.Pubs = append(ts.Pubs, name)
				s.Tasks = append(s.Tasks, spec.TaskSpec{
					Name:   name,
					Period: sh.PublishPeriod,
					Offset: spec.Duration(rng.Int63n(int64(sh.PublishPeriod.Std()))),
					Core:   nextCore(),
					Versions: []spec.VersionSpec{{
						Fn: pubBody(ck, ti, p, cid),
					}},
				})
			}
			for sub := 0; sub < sh.Subs; sub++ {
				name := fmt.Sprintf("%s-sub%d", topicName, sub)
				ts.Subs = append(ts.Subs, name)
				s.Tasks = append(s.Tasks, spec.TaskSpec{
					Name:   name,
					Period: sh.ConsumePeriod,
					Offset: spec.Duration(rng.Int63n(int64(sh.ConsumePeriod.Std()))),
					Core:   nextCore(),
					Versions: []spec.VersionSpec{{
						Fn: subBody(ck, ti, sub, cid),
					}},
				})
			}
			s.Topics[tsIdx] = ts
		}
	}

	// Mode presets for "mode" churn: "full" activates everything, "reduced"
	// drops the second half of every group (topic meshes stay live in both
	// so data-plane accounting is continuous).
	needModes := false
	for i := range sc.Churn {
		if sc.Churn[i].Action == "mode" {
			needModes = true
		}
	}
	if needModes {
		reduced := make([]string, 0, len(s.Tasks))
		for gi := range sc.Groups {
			g := &sc.Groups[gi]
			for i := 0; i < g.Count/2; i++ {
				reduced = append(reduced, fmt.Sprintf("%s-%d", g.Name, i))
			}
		}
		for i := range s.Topics {
			reduced = append(reduced, s.Topics[i].Pubs...)
			reduced = append(reduced, s.Topics[i].Subs...)
		}
		s.Modes = []spec.ModeSpec{
			{Name: "full", Mode: 0},
			{Name: "reduced", Mode: 1, Tasks: reduced},
		}
		gen.modes = []string{"reduced", "full"}
	}
	return s, gen
}

// pubBody returns the instrumented publisher body: stamp, publish, account.
// Under Reject a full buffer is a legitimate outcome (the entry was never
// accepted and the sequence number is reused); any other Publish failure is
// a middleware defect the harness exists to surface, so it becomes a
// checker violation rather than being silently swallowed.
func pubBody(ck *Checker, ti, p int, cid core.CID) core.TaskFunc {
	return func(x *core.ExecCtx, _ any) error {
		seq := ck.nextSeq(ti, p)
		if err := x.Publish(cid, seqEncode(p, seq)); err != nil {
			if !strings.Contains(err.Error(), " full (") {
				ck.violationf("topic check %d pub %d: publish failed unexpectedly: %v", ti, p, err)
			}
			return nil
		}
		ck.notePublished(ti, p, seq)
		return nil
	}
}

// subBody returns the instrumented subscriber body: drain the backlog,
// verifying per-publisher FIFO on every entry.
func subBody(ck *Checker, ti, sub int, cid core.CID) core.TaskFunc {
	return func(x *core.ExecCtx, _ any) error {
		for {
			v, ok, err := x.Take(cid)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			ck.noteTaken(ti, sub, v)
		}
	}
}

// chainBody is the explicit body of Accel2 groups. The version's bound
// pool is acquired at dispatch and held for the whole job; cs1 of the WCET
// runs as an explicit section on it, then cs2 parks on the second pool
// while the first is still held — the holder-chain shape whose transitive
// PIP boost (and waiter re-sort) broke in PR 5.
func chainBody(wcet, cs1, cs2 time.Duration, accel2 string) core.TaskFunc {
	return func(x *core.ExecCtx, _ any) error {
		h := x.App().AccelIDByName(accel2)
		if h == core.NoAccel {
			return fmt.Errorf("scenario: chain body: unknown accelerator %q", accel2)
		}
		pre := (wcet - cs1 - cs2) / 2
		if err := x.Compute(pre); err != nil {
			return err
		}
		if err := x.AccelSection(cs1); err != nil {
			return err
		}
		if err := x.AccelSectionOn(h, cs2); err != nil {
			return err
		}
		return x.Compute(wcet - cs1 - cs2 - pre)
	}
}

// lockedUnitRand returns a mutex-guarded uniform [0,1) source for task
// bodies, seeded away from the spec/driver stream. Bodies run concurrently
// on the OS backend, so they must never touch the driver's rng — both for
// memory safety and so the driver's decision sequence stays identical
// between backends.
func lockedUnitRand(seed int64) func() float64 {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed ^ bodySeedSalt))
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return r.Float64()
	}
}

// bodySeedSalt decorrelates the body stream from the spec/driver stream.
const bodySeedSalt = 0x51cc5a7a93e5

// churnEvent is one expanded churn firing.
type churnEvent struct {
	at    time.Duration
	phase int
	rep   int
}

// expandChurn unrolls repeating phases over the scenario duration into a
// time-sorted firing list.
func (sc *Scenario) expandChurn() []churnEvent {
	var evs []churnEvent
	horizon := sc.Duration.Std()
	for pi := range sc.Churn {
		cp := &sc.Churn[pi]
		at := cp.At.Std()
		rep := 0
		for at < horizon {
			evs = append(evs, churnEvent{at: at, phase: pi, rep: rep})
			if cp.Every <= 0 {
				break
			}
			at += cp.Every.Std()
			rep++
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs
}

// churnDriver executes churn transactions and records their admission
// outcomes for the checker.
type churnDriver struct {
	sc  *Scenario
	app *core.App
	ck  *Checker
	rng *rand.Rand
	gen *genState
	// frand is the locked body-side rand (failure-injection draws).
	frand func() float64

	rejections int64
	// per-phase ping-pong state
	alive      map[int][]string
	generation map[int]int
	modeIdx    int
	retuneUp   map[string]bool
}

func (d *churnDriver) fire(c rt.Ctx, ev churnEvent) {
	cp := &d.sc.Churn[ev.phase]
	if d.alive == nil {
		d.alive = make(map[int][]string)
		d.generation = make(map[int]int)
		d.retuneUp = make(map[string]bool)
	}
	before := d.app.Epoch()
	var err error
	var action string
	switch cp.Action {
	case "mode":
		if len(d.gen.modes) == 0 {
			return // no presets installed: nothing to attempt
		}
		name := d.gen.modes[d.modeIdx%len(d.gen.modes)]
		d.modeIdx++
		action = "mode:" + name
		err = d.app.SwitchMode(c, name)
	case "add":
		action = "add"
		err = d.admitTasks(c, ev, cp, nil)
	case "ping_pong":
		if len(d.alive[ev.phase]) == 0 {
			action = "ping_pong:admit"
			err = d.admitTasks(c, ev, cp, &ev.phase)
		} else {
			action = "ping_pong:retire"
			names := d.alive[ev.phase]
			err = d.app.Reconfigure(c, func(tx *core.Reconfig) error {
				for _, n := range names {
					if rerr := tx.RemoveTaskByName(n); rerr != nil {
						return rerr
					}
				}
				return nil
			})
			if err == nil {
				d.alive[ev.phase] = nil
			}
		}
	case "retune":
		action = "retune"
		if len(d.gen.groupTasks) == 0 {
			// Topics-only scenario: nothing to retune. Skip the attempt
			// record entirely — recording a "commit" that moved no epoch
			// would read as an admission-monotonicity violation.
			return
		}
		err = d.retuneTasks(c, cp)
	}
	if err != nil {
		if errors.Is(err, core.ErrNotSchedulable) {
			d.rejections++
		} else {
			d.ck.violationf("churn %s at %v failed unexpectedly: %v", action, ev.at, err)
		}
	}
	d.ck.noteAttempt(admissionAttempt{
		at:          ev.at,
		action:      action,
		err:         err,
		epochBefore: before,
		epochAfter:  d.app.Epoch(),
	})
}

// admitTasks stages cp.Count fresh tasks in one transaction. Names are
// unique per incarnation (phase, generation, index) so retirements are
// uniquely attributable. pingPhase non-nil tracks them for later removal.
func (d *churnDriver) admitTasks(c rt.Ctx, ev churnEvent, cp *ChurnPhase, pingPhase *int) error {
	g := d.generation[ev.phase]
	d.generation[ev.phase] = g + 1
	dist := cp.Period
	if dist.Min == 0 && dist.Max == 0 && len(dist.Choices) == 0 {
		dist = Dist{Min: spec.Duration(10 * time.Millisecond), Max: spec.Duration(100 * time.Millisecond)}
	}
	util := cp.Utilization
	if util == 0 {
		util = 0.01
	}
	accel := core.NoAccel
	if cp.Accel != "" {
		if accel = d.app.AccelIDByName(cp.Accel); accel == core.NoAccel {
			return fmt.Errorf("scenario: churn references unknown accelerator %q", cp.Accel)
		}
	}
	share := cp.AccelShare
	if share == 0 {
		share = 0.5
	}
	var names []string
	err := d.app.Reconfigure(c, func(tx *core.Reconfig) error {
		names = names[:0]
		for i := 0; i < cp.Count; i++ {
			name := fmt.Sprintf("churn%d-g%d-%d", ev.phase, g, i)
			period := dist.sample(d.rng)
			wcet := time.Duration(util * float64(period))
			if wcet < time.Microsecond {
				wcet = time.Microsecond
			}
			id, err := tx.AddTask(core.TData{Name: name, Period: period, VirtCore: i % d.sc.Workers})
			if err != nil {
				return err
			}
			var cs time.Duration
			if accel != core.NoAccel {
				cs = time.Duration(float64(wcet) * share)
			}
			vid, err := tx.AddVersion(id, d.churnBody(name, wcet, cs), nil, core.VSelect{WCET: wcet, AccelCS: cs})
			if err != nil {
				return err
			}
			if accel != core.NoAccel {
				if err := tx.UseAccel(id, vid, accel); err != nil {
					return err
				}
			}
			names = append(names, name)
		}
		return nil
	})
	if err == nil && pingPhase != nil {
		d.alive[*pingPhase] = append([]string(nil), names...)
	}
	return err
}

// churnBody is the instrumented body of churn-admitted tasks: drain
// tracking for the retire check plus probabilistic failure injection; a
// non-zero cs runs that much of the WCET as an accelerator critical
// section (the version is accelerator-bound by the transaction). Failure
// draws come from the locked body-side rand, never the driver rng.
func (d *churnDriver) churnBody(name string, wcet, cs time.Duration) core.TaskFunc {
	rate := d.sc.Failures.TaskErrorRate
	return func(x *core.ExecCtx, _ any) error {
		d.ck.noteStart(name, x.Now())
		var err error
		if cs > 0 {
			pre := (wcet - cs) / 2
			if err = x.Compute(pre); err == nil {
				if err = x.AccelSection(cs); err == nil {
					err = x.Compute(wcet - cs - pre)
				}
			}
		} else {
			err = x.Compute(wcet)
		}
		d.ck.noteFinish(name, x.Now())
		if err != nil {
			return err
		}
		if rate > 0 && d.frand() < rate {
			d.ck.noteInjected()
			return fmt.Errorf("scenario: injected failure in %s", name)
		}
		return nil
	}
}

// retuneTasks doubles or halves the periods of cp.Count random group tasks.
func (d *churnDriver) retuneTasks(c rt.Ctx, cp *ChurnPhase) error {
	if len(d.gen.groupTasks) == 0 {
		return nil
	}
	picks := make(map[string]bool, cp.Count)
	for len(picks) < cp.Count && len(picks) < len(d.gen.groupTasks) {
		picks[d.gen.groupTasks[d.rng.Intn(len(d.gen.groupTasks))]] = true
	}
	// Retune in sorted order: the transaction's operations land in the
	// telemetry stream, so map-iteration order would leak into the trace.
	names := make([]string, 0, len(picks))
	for name := range picks { //yasmin:orderinvariant sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	err := d.app.Reconfigure(c, func(tx *core.Reconfig) error {
		for _, name := range names {
			ts, ok := d.gen.groupData[name]
			if !ok {
				continue
			}
			id := tx.TaskID(name)
			if id < 0 {
				continue // mode-retired right now; skip
			}
			// Alternate between the declared period and half of it; an
			// explicit deadline scales with the period so D <= T holds.
			period := ts.Period.Std()
			deadline := ts.Deadline.Std()
			if !d.retuneUp[name] {
				period /= 2
				deadline /= 2
				if period < time.Millisecond {
					period = time.Millisecond
					deadline = ts.Deadline.Std()
				}
			}
			nd := core.TData{
				Name:          name,
				Period:        period,
				Deadline:      deadline,
				ReleaseOffset: ts.Offset.Std(),
				VirtCore:      ts.Core,
			}
			if err := tx.Retune(id, nd); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		for _, name := range names {
			d.retuneUp[name] = !d.retuneUp[name]
		}
	}
	return err
}
