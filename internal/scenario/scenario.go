package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/yasmin-rt/yasmin/internal/spec"
)

// Scenario is a complete stress-scenario description. All durations accept
// human-readable strings ("250ms") in both YAML and JSON.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string `json:"name"`
	// Seed drives every random choice; equal seeds reproduce runs exactly.
	Seed int64 `json:"seed,omitempty"`
	// Duration is the simulated run length.
	Duration spec.Duration `json:"duration"`
	// Workers is the number of worker threads (virtual CPUs).
	Workers int `json:"workers"`
	// Mapping selects the ready-queue scheme: "global" (default) or
	// "partitioned" (tasks are spread round-robin over the workers).
	Mapping string `json:"mapping,omitempty"`
	// Priority selects the priority assignment: "edf" (default), "rm",
	// "dm".
	Priority string `json:"priority,omitempty"`
	// SchedulerPeriod overrides the scheduler grid; zero derives the GCD.
	SchedulerPeriod spec.Duration `json:"scheduler_period,omitempty"`
	// MaxPendingJobs bounds simultaneously live jobs; zero derives a bound
	// from the task count.
	MaxPendingJobs int `json:"max_pending_jobs,omitempty"`

	// Nodes switches the scenario to cluster mode: Count co-simulated YASMIN
	// instances stitched together by the internal/cluster data plane, each
	// with its own Workers-wide core set. Task groups and topic endpoints
	// then carry node placements, and churn is cluster-wide two-phase.
	Nodes *NodesSpec `json:"nodes,omitempty"`

	// Accels declares shared accelerator pools; accel-bound task groups and
	// churn phases reference them by name and contend under PIP.
	Accels []AccelDecl `json:"accels,omitempty"`
	// AccelWaitBound, when positive, arms the checker's inversion-duration
	// invariant: no job may wait longer than this between parking on a pool
	// and being granted (or taking) an instance. Pick it from the workload
	// (longest critical section × chain depth plus scheduling slack); zero
	// disables the bound while the structural PIP checks stay on.
	AccelWaitBound spec.Duration `json:"accel_wait_bound,omitempty"`
	// Groups generate plain periodic compute tasks.
	Groups []TaskGroup `json:"groups,omitempty"`
	// Topics generate pub-sub meshes with instrumented endpoint tasks the
	// invariant checker observes.
	Topics []TopicShape `json:"topics,omitempty"`
	// Churn schedules live-reconfiguration phases.
	Churn []ChurnPhase `json:"churn,omitempty"`
	// Failures injects task-function errors.
	Failures Failures `json:"failures,omitempty"`
}

// NodesSpec configures a cluster scenario: the node count plus the fault
// injection and clock discipline of the simulated data plane.
type NodesSpec struct {
	// Count is the cluster size (>= 2; single-node scenarios omit the
	// nodes section entirely).
	Count int `json:"count"`
	// LossRate / ReorderRate inject datagram faults into the in-memory
	// transport (probabilities in [0,1); reordering is one-slot holdback).
	// Cross-node topics are then checked under the lossy relaxation: FIFO
	// must still hold per publisher, but gaps are legal.
	LossRate    float64 `json:"loss_rate,omitempty"`
	ReorderRate float64 `json:"reorder_rate,omitempty"`
	// SyncInterval turns on PTP-style clock sync against node 0 at this
	// period (zero = off).
	SyncInterval spec.Duration `json:"sync_interval,omitempty"`
	// ClockSkew offsets each node's local clock (index = node id; shorter
	// lists leave the remaining nodes unskewed). Node 0 is the reference.
	ClockSkew []spec.Duration `json:"clock_skew,omitempty"`
}

func (ns *NodesSpec) validate() error {
	if ns.Count < 2 {
		return fmt.Errorf("scenario: nodes: count must be >= 2, got %d (omit the nodes section for single-node runs)", ns.Count)
	}
	if ns.LossRate < 0 || ns.LossRate >= 1 {
		return fmt.Errorf("scenario: nodes: loss rate %g out of [0,1)", ns.LossRate)
	}
	if ns.ReorderRate < 0 || ns.ReorderRate >= 1 {
		return fmt.Errorf("scenario: nodes: reorder rate %g out of [0,1)", ns.ReorderRate)
	}
	if ns.SyncInterval < 0 {
		return fmt.Errorf("scenario: nodes: negative sync interval")
	}
	if len(ns.ClockSkew) > ns.Count {
		return fmt.Errorf("scenario: nodes: %d clock skews for %d nodes", len(ns.ClockSkew), ns.Count)
	}
	return nil
}

// lossy reports whether the data plane may legitimately lose or reorder
// frames (which relaxes the cross-node topic invariants).
func (ns *NodesSpec) lossy() bool {
	return ns != nil && (ns.LossRate > 0 || ns.ReorderRate > 0)
}

// Dist describes a duration distribution: either explicit Choices or a
// log-uniform range [Min, Max].
type Dist struct {
	Min     spec.Duration   `json:"min,omitempty"`
	Max     spec.Duration   `json:"max,omitempty"`
	Choices []spec.Duration `json:"choices,omitempty"`
}

// sample draws one duration.
func (d *Dist) sample(rng *rand.Rand) time.Duration {
	if len(d.Choices) > 0 {
		return d.Choices[rng.Intn(len(d.Choices))].Std()
	}
	lo, hi := float64(d.Min.Std()), float64(d.Max.Std())
	if lo >= hi {
		return d.Min.Std()
	}
	// Log-uniform: spreads samples across magnitudes, the standard choice
	// for period generation (harmonic pile-ups at one magnitude are not
	// representative workloads).
	return time.Duration(math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo))))
}

func (d *Dist) validate(what string) error {
	if len(d.Choices) > 0 {
		for _, c := range d.Choices {
			if c <= 0 {
				return fmt.Errorf("scenario: %s: non-positive choice %v", what, c.Std())
			}
		}
		return nil
	}
	if d.Min <= 0 || d.Max <= 0 {
		return fmt.Errorf("scenario: %s: range needs positive min and max (got %v..%v)", what, d.Min.Std(), d.Max.Std())
	}
	if d.Min > d.Max {
		return fmt.Errorf("scenario: %s: impossible range %v..%v (min > max)", what, d.Min.Std(), d.Max.Std())
	}
	return nil
}

// AccelDecl declares one shared accelerator pool.
type AccelDecl struct {
	Name string `json:"name"`
	// Count is the number of interchangeable instances (0 reads as 1).
	Count int `json:"count,omitempty"`
}

func (a *AccelDecl) validate(i int) error {
	if a.Name == "" {
		return fmt.Errorf("scenario: accelerator %d has no name", i)
	}
	if a.Count < 0 {
		return fmt.Errorf("scenario: accelerator %q: negative instance count %d", a.Name, a.Count)
	}
	return nil
}

// TaskGroup generates Count periodic tasks with sampled periods and a fixed
// per-task utilisation (WCET = Utilization × period).
type TaskGroup struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Period is the per-task period distribution.
	Period Dist `json:"period"`
	// Utilization is the per-task utilisation in (0, 1].
	Utilization float64 `json:"utilization"`
	// DeadlineRatio sets D = ratio × T; zero keeps the implicit deadline.
	DeadlineRatio float64 `json:"deadline_ratio,omitempty"`
	// OffsetJitter staggers first releases uniformly over one period,
	// avoiding a synchronous release storm at t=0.
	OffsetJitter bool `json:"offset_jitter,omitempty"`
	// Accel binds every task of the group to the named accelerator pool:
	// AccelShare of each WCET runs as the accelerator critical section
	// (default 0.5), so the group contends on the pool under PIP.
	Accel      string  `json:"accel,omitempty"`
	AccelShare float64 `json:"accel_share,omitempty"`
	// Accel2 nests a mid-job section on a SECOND pool (Accel2Share of the
	// WCET) inside the first pool's hold: each job acquires Accel, then
	// parks on Accel2 while still holding Accel — the holder-chain shape
	// whose PIP boost path broke in PR 5. Requires Accel.
	Accel2      string  `json:"accel2,omitempty"`
	Accel2Share float64 `json:"accel2_share,omitempty"`
	// Node places the whole group on one cluster node (cluster mode only;
	// the zero value is node 0).
	Node int `json:"node,omitempty"`
}

func (g *TaskGroup) validate(i int) error {
	if g.Name == "" {
		return fmt.Errorf("scenario: group %d has no name", i)
	}
	if g.Count <= 0 {
		return fmt.Errorf("scenario: group %q: count must be positive, got %d", g.Name, g.Count)
	}
	if err := g.Period.validate("group " + g.Name + " period"); err != nil {
		return err
	}
	if g.Utilization <= 0 || g.Utilization > 1 {
		return fmt.Errorf("scenario: group %q: impossible utilization %g (need 0 < u <= 1)", g.Name, g.Utilization)
	}
	if g.DeadlineRatio < 0 || g.DeadlineRatio > 1 {
		return fmt.Errorf("scenario: group %q: deadline ratio %g out of [0,1]", g.Name, g.DeadlineRatio)
	}
	if g.AccelShare < 0 || g.AccelShare >= 1 {
		return fmt.Errorf("scenario: group %q: accelerator share %g out of [0,1)", g.Name, g.AccelShare)
	}
	if g.AccelShare > 0 && g.Accel == "" {
		return fmt.Errorf("scenario: group %q: accel_share without an accel", g.Name)
	}
	if g.Accel2Share < 0 || g.Accel2Share >= 1 {
		return fmt.Errorf("scenario: group %q: accel2 share %g out of [0,1)", g.Name, g.Accel2Share)
	}
	if g.Accel2 != "" {
		if g.Accel == "" {
			return fmt.Errorf("scenario: group %q: accel2 without an accel (the chain needs an outer hold)", g.Name)
		}
		if g.Accel2 == g.Accel {
			return fmt.Errorf("scenario: group %q: accel2 must name a different pool than accel", g.Name)
		}
		share := g.AccelShare
		if share == 0 {
			share = 0.5
		}
		share2 := g.Accel2Share
		if share2 == 0 {
			share2 = 0.25
		}
		if share+share2 >= 1 {
			return fmt.Errorf("scenario: group %q: accel shares %g + %g leave no compute in the WCET", g.Name, share, share2)
		}
	} else if g.Accel2Share > 0 {
		return fmt.Errorf("scenario: group %q: accel2_share without an accel2", g.Name)
	}
	return nil
}

// TopicShape generates Count topics, each with Pubs publisher tasks and
// Subs subscriber tasks whose bodies are instrumented for the invariant
// checker (sequence-stamped publishes, per-publisher FIFO verification on
// take).
type TopicShape struct {
	Name string `json:"name"`
	// Count is the number of topic instances of this shape.
	Count int `json:"count"`
	// Pubs/Subs are the fan-in and fan-out degrees per instance.
	Pubs int `json:"pubs"`
	Subs int `json:"subs"`
	// Capacity is the shared buffer depth.
	Capacity int `json:"capacity"`
	// Policy is the overflow policy: "reject" (default), "drop_oldest",
	// "latest".
	Policy string `json:"policy,omitempty"`
	// PublishPeriod / ConsumePeriod are the endpoint task periods.
	PublishPeriod spec.Duration `json:"publish_period"`
	ConsumePeriod spec.Duration `json:"consume_period"`
	// PubNodes / SubNodes place the endpoint tasks in cluster mode:
	// publisher p lands on PubNodes[p mod len], subscriber s on
	// SubNodes[s mod len]. Empty lists mean node 0. A topic whose
	// publishers and subscribers land on different nodes becomes a
	// cross-node topic carried by the cluster data plane.
	PubNodes []int `json:"pub_nodes,omitempty"`
	SubNodes []int `json:"sub_nodes,omitempty"`
}

func (tp *TopicShape) validate(i int) error {
	if tp.Name == "" {
		return fmt.Errorf("scenario: topic shape %d has no name", i)
	}
	if tp.Count <= 0 || tp.Pubs <= 0 || tp.Subs <= 0 {
		return fmt.Errorf("scenario: topic %q: count/pubs/subs must be positive", tp.Name)
	}
	if tp.Capacity < 1 {
		return fmt.Errorf("scenario: topic %q: capacity must be >= 1, got %d", tp.Name, tp.Capacity)
	}
	switch tp.Policy {
	case "", "reject", "drop_oldest", "drop-oldest", "latest":
	default:
		return fmt.Errorf("scenario: topic %q: unknown policy %q", tp.Name, tp.Policy)
	}
	if tp.PublishPeriod <= 0 || tp.ConsumePeriod <= 0 {
		return fmt.Errorf("scenario: topic %q: publish_period and consume_period must be positive", tp.Name)
	}
	return nil
}

// ChurnPhase schedules reconfiguration transactions.
type ChurnPhase struct {
	// At is the first firing instant; Every repeats it until the scenario
	// ends (zero fires once).
	At    spec.Duration `json:"at"`
	Every spec.Duration `json:"every,omitempty"`
	// Action selects the transaction shape:
	//   "ping_pong" — admit Count tasks, remove them at the next firing,
	//                 re-admit at the one after, ... (fresh names per
	//                 incarnation so retirements are uniquely attributable)
	//   "add"       — admit Count tasks (cumulative)
	//   "retune"    — retune Count random churn tasks (period ×2 or ÷2)
	//   "mode"      — cycle through the spec's installed modes
	//   "cluster"   — cluster mode only: admit Count tasks on EVERY node in
	//                 one cluster-wide two-phase transaction (all nodes
	//                 switch at a common cluster epoch, or none do)
	Action string `json:"action"`
	// Count is the number of tasks per transaction (ping_pong/add/retune).
	Count int `json:"count,omitempty"`
	// Period/Utilization describe tasks this phase admits; zero values
	// default to 10–100ms log-uniform at 1% utilisation each.
	Period      Dist    `json:"period,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	// Accel binds admitted tasks to the named accelerator pool (AccelShare
	// of each WCET as the critical section, default 0.5): churn then
	// exercises the blocking-aware admission test and PIP arbitration
	// against a live contended pool.
	Accel      string  `json:"accel,omitempty"`
	AccelShare float64 `json:"accel_share,omitempty"`
}

func (cp *ChurnPhase) validate(i int) error {
	switch cp.Action {
	case "ping_pong", "add", "retune", "mode", "cluster":
	default:
		return fmt.Errorf("scenario: churn %d: unknown action %q", i, cp.Action)
	}
	if cp.At < 0 || cp.Every < 0 {
		return fmt.Errorf("scenario: churn %d: negative time", i)
	}
	if cp.Action != "mode" && cp.Count <= 0 {
		return fmt.Errorf("scenario: churn %d (%s): count must be positive", i, cp.Action)
	}
	if cp.Utilization < 0 || cp.Utilization > 1 {
		return fmt.Errorf("scenario: churn %d: impossible utilization %g", i, cp.Utilization)
	}
	if cp.Period.Min != 0 || cp.Period.Max != 0 || len(cp.Period.Choices) > 0 {
		if err := cp.Period.validate(fmt.Sprintf("churn %d period", i)); err != nil {
			return err
		}
	}
	if cp.AccelShare < 0 || cp.AccelShare >= 1 {
		return fmt.Errorf("scenario: churn %d: accelerator share %g out of [0,1)", i, cp.AccelShare)
	}
	if cp.AccelShare > 0 && cp.Accel == "" {
		return fmt.Errorf("scenario: churn %d: accel_share without an accel", i)
	}
	return nil
}

// Failures configures fault injection.
type Failures struct {
	// TaskErrorRate is the probability a churn-task job returns an error
	// (exercising the recordTaskError path under load).
	TaskErrorRate float64 `json:"task_error_rate,omitempty"`
}

// Validate checks the scenario for structural and distributional
// impossibilities. It is called by Load; call it directly on hand-built
// scenarios.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: needs a name")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario: needs a positive duration, got %v", sc.Duration.Std())
	}
	if sc.Workers <= 0 {
		return fmt.Errorf("scenario: needs workers >= 1, got %d", sc.Workers)
	}
	switch sc.Mapping {
	case "", "global", "partitioned":
	default:
		return fmt.Errorf("scenario: unknown mapping %q", sc.Mapping)
	}
	switch sc.Priority {
	case "", "edf", "rm", "dm":
	default:
		return fmt.Errorf("scenario: unknown priority %q", sc.Priority)
	}
	if sc.SchedulerPeriod < 0 {
		return fmt.Errorf("scenario: negative scheduler period")
	}
	if len(sc.Groups) == 0 && len(sc.Topics) == 0 {
		return fmt.Errorf("scenario: needs at least one task group or topic shape")
	}
	if sc.AccelWaitBound < 0 {
		return fmt.Errorf("scenario: negative accel_wait_bound")
	}
	accels := map[string]bool{}
	for i := range sc.Accels {
		if err := sc.Accels[i].validate(i); err != nil {
			return err
		}
		if accels[sc.Accels[i].Name] {
			return fmt.Errorf("scenario: duplicate accelerator name %q", sc.Accels[i].Name)
		}
		accels[sc.Accels[i].Name] = true
	}
	names := map[string]bool{}
	for i := range sc.Groups {
		if err := sc.Groups[i].validate(i); err != nil {
			return err
		}
		if names[sc.Groups[i].Name] {
			return fmt.Errorf("scenario: duplicate group name %q", sc.Groups[i].Name)
		}
		if a := sc.Groups[i].Accel; a != "" && !accels[a] {
			return fmt.Errorf("scenario: group %q: unknown accelerator %q", sc.Groups[i].Name, a)
		}
		if a := sc.Groups[i].Accel2; a != "" && !accels[a] {
			return fmt.Errorf("scenario: group %q: unknown accelerator %q", sc.Groups[i].Name, a)
		}
		names[sc.Groups[i].Name] = true
	}
	for i := range sc.Topics {
		if err := sc.Topics[i].validate(i); err != nil {
			return err
		}
		if names[sc.Topics[i].Name] {
			return fmt.Errorf("scenario: duplicate topic shape name %q", sc.Topics[i].Name)
		}
		names[sc.Topics[i].Name] = true
	}
	// Utilisation feasibility is per node: every node has its own Workers
	// cores (single-node scenarios are the one-node special case).
	perNodeU := map[int]float64{}
	for i := range sc.Groups {
		perNodeU[sc.Groups[i].Node] += float64(sc.Groups[i].Count) * sc.Groups[i].Utilization
	}
	for node, u := range perNodeU { //yasmin:orderinvariant fail-fast validation, any overload is fatal
		if u > float64(sc.Workers) {
			return fmt.Errorf("scenario: impossible load: groups demand %.2f workers' worth of utilisation on node %d's %d workers", u, node, sc.Workers)
		}
	}
	if err := sc.validateCluster(); err != nil {
		return err
	}
	for i := range sc.Churn {
		if err := sc.Churn[i].validate(i); err != nil {
			return err
		}
		if a := sc.Churn[i].Accel; a != "" && !accels[a] {
			return fmt.Errorf("scenario: churn %d: unknown accelerator %q", i, a)
		}
	}
	if sc.Failures.TaskErrorRate < 0 || sc.Failures.TaskErrorRate > 1 {
		return fmt.Errorf("scenario: task error rate %g out of [0,1]", sc.Failures.TaskErrorRate)
	}
	return nil
}

// validateCluster enforces the cluster-mode rules — and, symmetrically,
// that single-node scenarios use no cluster-only knobs.
func (sc *Scenario) validateCluster() error {
	if sc.Nodes == nil {
		for i := range sc.Groups {
			if sc.Groups[i].Node != 0 {
				return fmt.Errorf("scenario: group %q places node %d without a nodes section", sc.Groups[i].Name, sc.Groups[i].Node)
			}
		}
		for i := range sc.Topics {
			if len(sc.Topics[i].PubNodes) > 0 || len(sc.Topics[i].SubNodes) > 0 {
				return fmt.Errorf("scenario: topic %q places endpoints on nodes without a nodes section", sc.Topics[i].Name)
			}
		}
		for i := range sc.Churn {
			if sc.Churn[i].Action == "cluster" {
				return fmt.Errorf("scenario: churn %d: \"cluster\" action needs a nodes section", i)
			}
		}
		return nil
	}
	if err := sc.Nodes.validate(); err != nil {
		return err
	}
	if len(sc.Accels) > 0 {
		// Accelerators are node-local hardware; a cluster scenario sharing
		// one pool across nodes would be physically meaningless. Per-node
		// pools are future work — reject rather than silently mis-model.
		return fmt.Errorf("scenario: accelerator pools are not supported in cluster mode")
	}
	n := sc.Nodes.Count
	for i := range sc.Groups {
		if g := &sc.Groups[i]; g.Node < 0 || g.Node >= n {
			return fmt.Errorf("scenario: group %q: node %d out of range [0,%d)", g.Name, g.Node, n)
		}
	}
	for i := range sc.Topics {
		tp := &sc.Topics[i]
		for _, lists := range [][]int{tp.PubNodes, tp.SubNodes} {
			for _, nd := range lists {
				if nd < 0 || nd >= n {
					return fmt.Errorf("scenario: topic %q: node %d out of range [0,%d)", tp.Name, nd, n)
				}
			}
		}
	}
	for i := range sc.Churn {
		if sc.Churn[i].Action != "cluster" {
			// Single-app churn inside a cluster run would move one node's
			// epoch without the others — exactly the divergence the
			// cluster-wide transaction exists to prevent.
			return fmt.Errorf("scenario: churn %d: only the \"cluster\" action is allowed in cluster mode, got %q", i, sc.Churn[i].Action)
		}
	}
	return nil
}

// Load parses a scenario from YAML (.yaml/.yml) or JSON (anything else)
// and validates it. Unknown fields are rejected in both syntaxes.
func Load(data []byte, path string) (*Scenario, error) {
	ext := strings.ToLower(filepath.Ext(path))
	jsonBytes := data
	if ext == ".yaml" || ext == ".yml" {
		doc, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		jsonBytes, err = json.Marshal(doc)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(jsonBytes)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadFile reads and validates a scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Load(data, path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// TaskCount returns the number of statically declared tasks (groups plus
// topic endpoints), before churn headroom.
func (sc *Scenario) TaskCount() int {
	n := 0
	for i := range sc.Groups {
		n += sc.Groups[i].Count
	}
	for i := range sc.Topics {
		n += sc.Topics[i].Count * (sc.Topics[i].Pubs + sc.Topics[i].Subs)
	}
	return n
}

// churnHeadroom returns extra task slots churn phases may occupy at once:
// live adds plus up-to-one draining generation of ping-pong tasks.
func (sc *Scenario) churnHeadroom() int {
	n := 0
	for i := range sc.Churn {
		cp := &sc.Churn[i]
		switch cp.Action {
		case "add":
			reps := 1
			if cp.Every > 0 {
				reps = int(sc.Duration.Std()/cp.Every.Std()) + 1
			}
			n += cp.Count * reps
		case "ping_pong":
			n += 2 * cp.Count // one live + one draining generation
		}
	}
	return n
}
