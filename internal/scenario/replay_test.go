package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// exportScenario runs the given scenario with a file-backed telemetry
// pipeline and returns the export path and the live report.
func exportScenario(t *testing.T, yaml string) (string, *Report) {
	t.Helper()
	sc, err := Load([]byte(yaml), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "export.jsonl")
	sink, err := telemetry.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := telemetry.New(sink, telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWith(sc, RunOpts{Telemetry: pipe.Blocking()})
	if cerr := pipe.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("live run not clean: %v", rep.Violations)
	}
	st := pipe.Stats()
	if st.Dropped != 0 {
		t.Fatalf("blocking exporter dropped %d records", st.Dropped)
	}
	return path, rep
}

func TestCheckStreamPassesOnCleanExport(t *testing.T) {
	path, rep := exportScenario(t, smokeYAML)
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckStream(st, StreamCheckOpts{}); len(v) != 0 {
		t.Fatalf("replayed clean run has violations: %v", v)
	}
	if st.Lost() != 0 {
		t.Fatalf("Lost() = %d", st.Lost())
	}
	// End-to-end completeness: the stream holds exactly what the live run
	// recorded.
	if int64(len(st.Jobs)) != rep.Jobs {
		t.Fatalf("stream has %d jobs, live run %d", len(st.Jobs), rep.Jobs)
	}
	if len(st.Reconfigs) != rep.Epochs {
		t.Fatalf("stream has %d epochs, live run %d", len(st.Reconfigs), rep.Epochs)
	}
	if len(st.Retires) != rep.Retires {
		t.Fatalf("stream has %d retires, live run %d", len(st.Retires), rep.Retires)
	}
}

func TestCheckStreamVerifiesAccelInvariants(t *testing.T) {
	path, rep := exportScenario(t, accelYAML)
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AccelAcquires == 0 || len(st.Accels) == 0 {
		t.Fatalf("scenario exercised no accel events (live %d, stream %d)",
			rep.AccelAcquires, len(st.Accels))
	}
	// The accel scenario declares accel_wait_bound: 25ms; the replayed
	// stream must satisfy the same inversion bound the live checker proved.
	sc, err := Load([]byte(accelYAML), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckStream(st, StreamCheckOpts{AccelWaitBound: sc.AccelWaitBound.Std()}); len(v) != 0 {
		t.Fatalf("accel replay has violations: %v", v)
	}
}

// mutateExport rewrites the export with a line-level corruption and replays
// it.
func mutateExport(t *testing.T, path string, mutate func([]string) []string) *telemetry.Stream {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	out := filepath.Join(t.TempDir(), "mutated.jsonl")
	if err := os.WriteFile(out, []byte(strings.Join(mutate(lines), "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ReplayFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCheckStreamFailsOnSeededGapAndReorder(t *testing.T) {
	path, _ := exportScenario(t, smokeYAML)

	cases := []struct {
		label  string
		mutate func([]string) []string
	}{
		// Delete one record: a silent gap the trailer can't account for.
		{"gap", func(ls []string) []string {
			return append(ls[:20:20], ls[21:]...)
		}},
		// Swap two adjacent records: stream order broken.
		{"reorder", func(ls []string) []string {
			ls[10], ls[11] = ls[11], ls[10]
			return ls
		}},
		// Repeat a record: duplicated sequence number.
		{"duplicate", func(ls []string) []string {
			return append(ls[:15:15], append([]string{ls[14]}, ls[15:]...)...)
		}},
	}
	for _, tc := range cases {
		st := mutateExport(t, path, tc.mutate)
		v := CheckStream(st, StreamCheckOpts{})
		if len(v) == 0 {
			t.Errorf("%s: CheckStream found nothing on a corrupted export", tc.label)
			continue
		}
		t.Logf("%s: detected: %s", tc.label, v[0])
		if tc.label == "gap" && st.Lost() == 0 {
			t.Error("gap: Lost() = 0 after deleting a record")
		}
	}
}

// TestCheckStreamFlagsRetireViolation seeds a semantic violation: move a
// task's retirement record earlier than its last job, breaking
// drain-before-retire in a stream whose transport framing is untouched.
func TestCheckStreamFlagsRetireViolation(t *testing.T) {
	path, _ := exportScenario(t, smokeYAML)
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find a retire event and pull its At below the retiree's last finish.
	seeded := false
	for i := range st.Events {
		ev := &st.Events[i]
		if ev.Kind != telemetry.KindRetire {
			continue
		}
		for j := range st.Events {
			jb := &st.Events[j]
			if jb.Kind == telemetry.KindJob && jb.Job.Task == ev.Retire.Task && jb.Job.Finish > 0 {
				ev.Retire.At = jb.Job.Finish - 1
				seeded = true
				break
			}
		}
		if seeded {
			break
		}
	}
	if !seeded {
		t.Fatal("no retire event with prior jobs in the smoke export")
	}
	v := CheckStream(st, StreamCheckOpts{})
	found := false
	for _, s := range v {
		if strings.Contains(s, "drain-before-retire") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded retire-before-drain not flagged; violations: %v", v)
	}
}
