// Package scenario is the declarative stress-scenario engine: a Scenario
// file (YAML or JSON) describes a synthetic workload — task-generator
// groups with period/utilisation distributions, pub-sub topic fan-in/out
// shapes, timed reconfiguration churn with mode ping-pong, and failure
// injection — and Run drives it through the spec/Reconfigure machinery on
// the deterministic simulation backend at scale (tens of thousands of
// tasks, millions of jobs), validating runtime invariants as it goes.
//
// It is the evaluation harness the paper's Sections 4–5 use hand-written
// task sets for, generalised: any workload the schema can express becomes
// a repeatable, seeded experiment with a machine-checkable pass/fail
// verdict (Checker) and a JSON report (Report) for CI trend tracking. The
// cmd/yasmin-stress command is the CLI wrapper; the scenarios/ directory
// at the repository root holds reference scenario files, and the README's
// "Stress & scale" section documents the schema.
//yasmin:deterministic package

package scenario
