package scenario

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// StreamCheckOpts configures CheckStream.
type StreamCheckOpts struct {
	// AccelWaitBound arms the inversion-duration invariant of the accel
	// replay, exactly like the scenario's accel_wait_bound (zero = off).
	AccelWaitBound time.Duration
	// RelaxedOrder skips the strict stream-order check for exports produced
	// by concurrent OS-thread producers; sim-backed exports (yasmin-stress,
	// yasmin-sim) are strictly ordered and should leave this false.
	RelaxedOrder bool
}

// CheckStream re-runs the scenario invariants on a replayed telemetry
// export and returns every violation found (nil means the stream is
// provably complete and consistent):
//
//   - transport: every published record is on the stream or explicitly
//     accounted as dropped, no duplicates, stream order intact
//     (telemetry.Stream.Verify);
//   - admission monotonicity: committed epochs are consecutive from 1;
//   - drain-before-retire: once a task's RetireEvent is on the stream, no
//     further job record of that task may appear until a reconfiguration
//     re-admits it, and the retiring incarnation's last job activity
//     precedes the retirement instant;
//   - accelerator arbitration: the same PIP replay the live checker runs
//     (priority-ordered admission, hold/release pairing, bounded waits).
//
// The data-plane FIFO invariants need the instrumented task bodies and only
// run live; everything the recorder emits is re-verified here from the
// export alone.
func CheckStream(st *telemetry.Stream, opts StreamCheckOpts) []string {
	ck := NewChecker()
	ck.accelWaitBound = opts.AccelWaitBound
	for _, v := range st.Verify(!opts.RelaxedOrder) {
		ck.violationf("%s", v)
	}
	ck.checkEpochs(st.Reconfigs)
	ck.checkRetireStream(st.Events)
	ck.checkAccel(st.Accels)
	if ck.dropped > 0 {
		ck.violations = append(ck.violations, fmt.Sprintf("... and %d more violations", ck.dropped))
	}
	return ck.violations
}

// checkRetireStream replays drain-before-retire from the event stream.
// Unlike the live check (which relies on instrumented churn bodies with
// per-incarnation-unique names), the stream sees every task — including
// mode-switch retirees that are later re-admitted under the same name — so
// incarnations are tracked by balancing RetireEvents against the admissions
// reconfiguration records report.
func (ck *Checker) checkRetireStream(events []telemetry.Event) {
	type watch struct {
		// live balances incarnations: the statically admitted one plus one
		// per ReconfigRecord.Admitted entry, minus one per RetireEvent.
		live                  int
		lastStart, lastFinish time.Duration
	}
	tasks := make(map[string]*watch)
	get := func(name string) *watch {
		w := tasks[name]
		if w == nil {
			w = &watch{live: 1}
			tasks[name] = w
		}
		return w
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case telemetry.KindJob:
			w := get(ev.Job.Task)
			if w.live <= 0 {
				ck.violationf("task %s: job %d on stream after retirement (drain-before-retire violated in replay)",
					ev.Job.Task, ev.Job.Job)
			}
			if ev.Job.Start > w.lastStart {
				w.lastStart = ev.Job.Start
			}
			if ev.Job.Finish > w.lastFinish {
				w.lastFinish = ev.Job.Finish
			}
		case telemetry.KindRetire:
			w := get(ev.Retire.Task)
			w.live--
			if w.live <= 0 {
				// No overlapping incarnation: the activity seen so far all
				// belongs to the retiree and must precede the retirement.
				if w.lastStart > ev.Retire.At {
					ck.violationf("task %s: job started at %v after retirement at %v (drain-before-retire violated in replay)",
						ev.Retire.Task, w.lastStart, ev.Retire.At)
				}
				if w.lastFinish > ev.Retire.At {
					ck.violationf("task %s: job finished at %v after retirement at %v (drain-before-retire violated in replay)",
						ev.Retire.Task, w.lastFinish, ev.Retire.At)
				}
			}
			w.lastStart, w.lastFinish = 0, 0
		case telemetry.KindReconfig:
			for _, name := range ev.Reconfig.Admitted {
				if w := tasks[name]; w != nil {
					w.live++
				}
				// Unseen names need no entry: get() seeds live=1 on first
				// sight, which is exactly this admission.
			}
		}
	}
}
