package scenario

import (
	"time"

	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// StreamCheckOpts configures CheckStream.
type StreamCheckOpts struct {
	// AccelWaitBound arms the inversion-duration invariant of the accel
	// replay, exactly like the scenario's accel_wait_bound (zero = off).
	AccelWaitBound time.Duration
	// RelaxedOrder skips the order-dependent checks for exports produced
	// by concurrent OS-thread producers: the strict stream-order check,
	// drain-before-retire (which sequences job records against retirement
	// records), and the accelerator replay (whose park/boost/grant
	// interleaving is only meaningful in recording order). Sim-backed
	// exports (yasmin-stress, yasmin-sim) are strictly ordered and should
	// leave this false; the live checker still covers retires and accel
	// arbitration on the OS backend, so relaxing the replay loses no
	// invariant, only the offline re-proof.
	RelaxedOrder bool
}

// CheckStream re-runs the scenario invariants on a replayed telemetry
// export and returns every violation found (nil means the stream is
// provably complete and consistent):
//
//   - transport: every published record is on the stream or explicitly
//     accounted as dropped, no duplicates, stream order intact
//     (telemetry.Stream.Verify);
//   - admission monotonicity: committed epochs are consecutive from 1;
//   - drain-before-retire: once a task's RetireEvent is on the stream, no
//     further job record of that task may appear until a reconfiguration
//     re-admits it, and the retiring incarnation's last job activity
//     precedes the retirement instant;
//   - accelerator arbitration: the same PIP replay the live checker runs
//     (priority-ordered admission, hold/release pairing, bounded waits).
//
// The data-plane FIFO invariants need the instrumented task bodies and only
// run live; everything the recorder emits is re-verified here from the
// export alone.
func CheckStream(st *telemetry.Stream, opts StreamCheckOpts) []string {
	ck := NewChecker()
	ck.accelWaitBound = opts.AccelWaitBound
	ck.mu.Lock()
	defer ck.mu.Unlock()
	for _, v := range st.Verify(!opts.RelaxedOrder) {
		ck.violationLocked("%s", v)
	}
	ck.checkEpochs(st.Reconfigs)
	if !opts.RelaxedOrder {
		ck.checkRetireStream(st.Events)
		ck.checkAccel(st.Accels)
	}
	return ck.renderLocked()
}

// CheckStreams reconciles the per-node telemetry exports of one cluster
// run (one Stream per node, any order) and returns every violation found:
//
//   - each stream individually passes CheckStream, prefixed with its node;
//   - every stream carries one consistent node stamp, and no two streams
//     claim the same node (a corrupt merge is reported loudly, not
//     reconciled);
//   - cluster-epoch histories agree: every node's export must record the
//     identical sequence of committed cluster epochs — a divergence means
//     a node ran (and stamped frames) in a stale epoch;
//   - frame accounting closes: every recorded send whose destination
//     stream is present matches exactly one receive or one recorded drop
//     on that destination (an unmatched send is silent loss; a receive or
//     drop without a send is a phantom frame), and per remote publisher
//     the received frame sequences are strictly increasing (the transport
//     FIFO discipline, re-proven offline).
//
// A single-element slice degrades to CheckStream plus the self-consistency
// checks; sends to nodes whose stream was not supplied are left
// unreconciled rather than flagged.
func CheckStreams(sts []*telemetry.Stream, opts StreamCheckOpts) []string {
	// Per-stream verdicts run on their own checkers BEFORE the reconciling
	// checker's lock is taken: Checker.mu is self-ranked, so nesting two
	// instances would trip the lock-order gate (and encode a real deadlock
	// shape if the instances ever aliased).
	perStream := make([][]string, len(sts))
	for i, st := range sts {
		if st.Node() >= 0 {
			perStream[i] = CheckStream(st, opts)
		}
	}

	ck := NewChecker()
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if len(sts) == 0 {
		ck.violationLocked("no streams to check")
		return ck.renderLocked()
	}
	byNode := make(map[int]*telemetry.Stream, len(sts))
	order := make([]int, 0, len(sts))
	for i, st := range sts {
		n := st.Node()
		if n < 0 {
			ck.violationLocked("stream %d: mixed node stamps (corrupt merge input)", i)
			continue
		}
		if byNode[n] != nil {
			ck.violationLocked("stream %d: node %d already supplied by another file", i, n)
			continue
		}
		byNode[n] = st
		order = append(order, n)
		for _, v := range perStream[i] {
			ck.violationLocked("node %d: %s", n, v)
		}
	}
	sortInts2(order)

	// Cluster-epoch agreement: identical histories everywhere.
	if len(order) > 1 {
		ref := byNode[order[0]]
		for _, n := range order[1:] {
			if !sameEpochHistory(ref.CEpochs, byNode[n].CEpochs) {
				ck.violationLocked("cluster epoch history diverges: node %d saw %v, node %d saw %v (stale-epoch execution)",
					order[0], epochList(ref.CEpochs), n, epochList(byNode[n].CEpochs))
			}
		}
	}

	// Frame reconciliation across files.
	type frameKey struct {
		origin, dst, pub int
		topic            string
		fseq             uint64
	}
	sends := make(map[frameKey]int)
	recvs := make(map[frameKey]int)
	type pubKey struct {
		origin, pub int
		topic       string
	}
	for _, n := range order {
		lastRecv := make(map[pubKey]uint64)
		for _, f := range byNode[n].Frames {
			k := frameKey{origin: f.Origin, dst: f.Dst, pub: f.Pub, topic: f.Topic, fseq: f.FSeq}
			switch f.Dir {
			case telemetry.FrameSend:
				if f.Origin != n {
					ck.violationLocked("node %d: send record claims origin %d", n, f.Origin)
				}
				sends[k]++
				if sends[k] == 2 {
					ck.violationLocked("node %d: frame %s pub %d seq %d to node %d sent twice", n, f.Topic, f.Pub, f.FSeq, f.Dst)
				}
			case telemetry.FrameRecv, telemetry.FrameDrop:
				if f.Dst != n {
					ck.violationLocked("node %d: %s record claims destination %d", n, f.Dir, f.Dst)
				}
				recvs[k]++
				if recvs[k] == 2 {
					ck.violationLocked("node %d: frame %s pub %d seq %d from node %d accounted twice", n, f.Topic, f.Pub, f.FSeq, f.Origin)
				}
				if f.Dir == telemetry.FrameRecv {
					pk := pubKey{origin: f.Origin, pub: f.Pub, topic: f.Topic}
					if last, ok := lastRecv[pk]; ok && f.FSeq <= last {
						ck.violationLocked("node %d: topic %s pub %d (node %d): received frame seq %d after %d (transport FIFO broken)",
							n, f.Topic, f.Pub, f.Origin, f.FSeq, last)
					}
					lastRecv[pk] = f.FSeq
				}
			}
		}
	}
	for k := range sends { //yasmin:orderinvariant violation set is order-independent
		if byNode[k.dst] == nil {
			continue // destination's export not supplied; can't reconcile
		}
		if recvs[k] == 0 {
			ck.violationLocked("frame %s pub %d seq %d, node %d -> %d: sent but neither received nor accounted dropped (silent loss)",
				k.topic, k.pub, k.fseq, k.origin, k.dst)
		}
	}
	for k := range recvs { //yasmin:orderinvariant violation set is order-independent
		if byNode[k.origin] == nil {
			continue
		}
		if sends[k] == 0 {
			ck.violationLocked("frame %s pub %d seq %d, node %d -> %d: received/dropped but never sent (phantom frame)",
				k.topic, k.pub, k.fseq, k.origin, k.dst)
		}
	}

	return ck.renderLocked()
}

// sameEpochHistory compares two cluster-epoch record sequences by epoch.
func sameEpochHistory(a, b []telemetry.ClusterEpochRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Epoch != b[i].Epoch {
			return false
		}
	}
	return true
}

// epochList renders an epoch history for a violation message.
func epochList(recs []telemetry.ClusterEpochRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i := range recs {
		out[i] = recs[i].Epoch
	}
	return out
}

// sortInts2 is an insertion sort over node ids (a handful of entries).
func sortInts2(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// checkRetireStream replays drain-before-retire from the event stream.
// Unlike the live check (which relies on instrumented churn bodies with
// per-incarnation-unique names), the stream sees every task — including
// mode-switch retirees that are later re-admitted under the same name — so
// incarnations are tracked by balancing RetireEvents against the admissions
// reconfiguration records report.
func (ck *Checker) checkRetireStream(events []telemetry.Event) {
	type watch struct {
		// live balances incarnations: the statically admitted one plus one
		// per ReconfigRecord.Admitted entry, minus one per RetireEvent.
		live                  int
		lastStart, lastFinish time.Duration
	}
	tasks := make(map[string]*watch)
	get := func(name string) *watch {
		w := tasks[name]
		if w == nil {
			w = &watch{live: 1}
			tasks[name] = w
		}
		return w
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case telemetry.KindJob:
			w := get(ev.Job.Task)
			if w.live <= 0 {
				ck.violationLocked("task %s: job %d on stream after retirement (drain-before-retire violated in replay)",
					ev.Job.Task, ev.Job.Job)
			}
			if ev.Job.Start > w.lastStart {
				w.lastStart = ev.Job.Start
			}
			if ev.Job.Finish > w.lastFinish {
				w.lastFinish = ev.Job.Finish
			}
		case telemetry.KindRetire:
			w := get(ev.Retire.Task)
			w.live--
			if w.live <= 0 {
				// No overlapping incarnation: the activity seen so far all
				// belongs to the retiree and must precede the retirement.
				if w.lastStart > ev.Retire.At {
					ck.violationLocked("task %s: job started at %v after retirement at %v (drain-before-retire violated in replay)",
						ev.Retire.Task, w.lastStart, ev.Retire.At)
				}
				if w.lastFinish > ev.Retire.At {
					ck.violationLocked("task %s: job finished at %v after retirement at %v (drain-before-retire violated in replay)",
						ev.Retire.Task, w.lastFinish, ev.Retire.At)
				}
			}
			w.lastStart, w.lastFinish = 0, 0
		case telemetry.KindReconfig:
			for _, name := range ev.Reconfig.Admitted {
				if w := tasks[name]; w != nil {
					w.live++
				}
				// Unseen names need no entry: get() seeds live=1 on first
				// sight, which is exactly this admission.
			}
		}
	}
}
