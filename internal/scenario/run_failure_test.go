package scenario

import (
	"strings"
	"testing"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

// failureYAML isolates the churn failure-injection path: one add phase keeps
// admitting short-period tasks whose bodies draw from the body-side rand at
// a high error rate, so a run produces plenty of both successes and injected
// failures.
const failureYAML = `
name: failure-injection
seed: 11
duration: 200ms
workers: 2
priority: edf
groups:
  - name: base
    count: 2
    period:
      min: 10ms
      max: 20ms
    utilization: 0.02
churn:
  - at: 10ms
    every: 60ms
    action: add
    count: 4
    period:
      min: 4ms
      max: 12ms
    utilization: 0.02
failures:
  task_error_rate: 0.3
`

// TestFailureInjectionCounted proves injected errors round-trip through the
// middleware's error accounting: the run reports a substantial non-zero
// TaskErrors, and the checker (which independently counts every injection at
// the draw site) raises no mismatch violation.
func TestFailureInjectionCounted(t *testing.T) {
	sc, err := Load([]byte(failureYAML), "failure.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.TaskErrors == 0 {
		t.Fatal("30% error rate over churn jobs injected nothing")
	}
	if rep.TaskErrors >= rep.Jobs {
		t.Fatalf("every job failed (%d errors, %d jobs): injection rate is not being applied per-draw", rep.TaskErrors, rep.Jobs)
	}
}

// TestFailureInjectionDeterministic pins the body-side rand: failure draws
// come from a dedicated locked stream seeded from the scenario seed, so the
// same scenario injects the identical error count every run.
func TestFailureInjectionDeterministic(t *testing.T) {
	sc, err := Load([]byte(failureYAML), "failure.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.TaskErrors != rep2.TaskErrors {
		t.Fatalf("same seed injected %d then %d errors", rep1.TaskErrors, rep2.TaskErrors)
	}
	if rep1.Jobs != rep2.Jobs {
		t.Fatalf("same seed ran %d then %d jobs", rep1.Jobs, rep2.Jobs)
	}

	// A different seed draws a different failure sequence; the count almost
	// surely moves too. If it doesn't, don't fail — the property under test
	// is determinism per seed, not sensitivity — but a shared stream between
	// driver and bodies would show up here first.
	reseeded := *sc
	reseeded.Seed = 12
	rep3, err := Run(&reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Violations) != 0 {
		t.Fatalf("reseeded violations: %v", rep3.Violations)
	}
}

// TestFailureInjectionZeroRate proves a zero rate injects nothing: the body
// must not even draw (a draw would desync the body rand between otherwise
// identical scenarios), and the middleware counts zero task errors.
func TestFailureInjectionZeroRate(t *testing.T) {
	sc, err := Load([]byte(failureYAML), "failure.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc.Failures.TaskErrorRate = 0
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.TaskErrors != 0 {
		t.Fatalf("zero rate injected %d errors", rep.TaskErrors)
	}
}

// TestFailureInjectionMismatchFlagged proves the accounting verdict has
// teeth: a checker that witnessed an injection the middleware never counted
// must flag the mismatch at Finish. Built against an idle app (zero task
// errors) with one noteInjected recorded — the exact discrepancy a dropped
// error-return path in the middleware would produce.
func TestFailureInjectionMismatchFlagged(t *testing.T) {
	eng := sim.NewEngine(1)
	env, err := rt.NewSimEnv(eng, platform.Generic(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.New(core.Config{Workers: 1, MaxTasks: 4, MaxChannels: 1, MaxPendingJobs: 8}, env)
	if err != nil {
		t.Fatal(err)
	}
	ck := NewChecker()
	ck.noteInjected()
	violations := ck.Finish(app)
	found := false
	for _, v := range violations {
		if strings.Contains(v, "middleware counted 0, checker injected 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seeded injection-count mismatch not flagged; got: %v", violations)
	}
}
