package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A deliberately small YAML-subset reader, so scenario files can be written
// in the friendlier YAML syntax without pulling a dependency into the
// module (the repository is dependency-free by policy). The subset covers
// what scenario files need:
//
//   - block mappings  `key: value` and nested blocks `key:` + indent
//   - block sequences `- item`, including `- key: value` inline-map items
//   - scalars: strings (bare or quoted), integers, floats, booleans, null
//   - comments (`# ...`) and blank lines
//
// NOT supported (parse errors, never silent misreads): flow collections
// ([a, b], {k: v}), anchors/aliases, multi-line scalars, tabs as
// indentation, duplicate keys. Durations stay strings ("250ms") and are
// parsed by the JSON layer, exactly as in JSON scenario files.

// yamlLine is one significant line of input.
type yamlLine struct {
	num    int // 1-based line number in the source
	indent int
	text   string // content with indentation stripped
}

// parseYAML parses the subset into the same shape encoding/json produces:
// map[string]any, []any, string, float64, bool, nil.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimRight(raw, " \r")
		content := strings.TrimLeft(trimmed, " ")
		if strings.HasPrefix(content, "\t") {
			return nil, fmt.Errorf("yaml line %d: tab indentation is not supported", i+1)
		}
		if content == "" || strings.HasPrefix(content, "#") {
			continue
		}
		lines = append(lines, yamlLine{num: i + 1, indent: len(trimmed) - len(content), text: content})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", l.num, l.text)
	}
	return v, nil
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses a mapping or sequence whose entries sit at exactly
// `indent`.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("yaml line %d: sequence item inside a mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			out[key] = scalar(rest)
			continue
		}
		// Nested block (or null when nothing deeper follows).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
		} else {
			out[key] = nil
		}
	}
	return out, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
			}
			break
		}
		item := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if item == "" {
			// `-` alone: nested block item.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		if key, rest, err := splitKey(yamlLine{num: l.num, text: item}); err == nil {
			// `- key: value` opens an inline mapping item whose further keys
			// sit two columns deeper (aligned under the key).
			itemIndent := indent + 2
			m := map[string]any{}
			p.pos++
			if rest != "" {
				m[key] = scalar(rest)
			} else if p.pos < len(p.lines) && p.lines[p.pos].indent > itemIndent {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			} else {
				m[key] = nil
			}
			if p.pos < len(p.lines) && p.lines[p.pos].indent == itemIndent &&
				!strings.HasPrefix(p.lines[p.pos].text, "- ") {
				more, err := p.parseMapping(itemIndent)
				if err != nil {
					return nil, err
				}
				for k, v := range more.(map[string]any) { //yasmin:orderinvariant commutative merge, duplicate keys fatal
					if _, dup := m[k]; dup {
						return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, k)
					}
					m[k] = v
				}
			}
			out = append(out, m)
			continue
		}
		// Plain scalar item.
		p.pos++
		out = append(out, scalar(item))
	}
	return out, nil
}

// splitKey splits "key: value" / "key:"; an error means the line is not a
// mapping entry.
func splitKey(l yamlLine) (key, rest string, err error) {
	if strings.HasPrefix(l.text, "[") || strings.HasPrefix(l.text, "{") {
		return "", "", fmt.Errorf("yaml line %d: flow collections are not supported", l.num)
	}
	i := strings.Index(l.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected \"key: value\", got %q", l.num, l.text)
	}
	if i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("yaml line %d: missing space after ':' in %q", l.num, l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: empty key", l.num)
	}
	if strings.HasPrefix(key, `"`) {
		unq, uerr := strconv.Unquote(key)
		if uerr != nil {
			return "", "", fmt.Errorf("yaml line %d: bad quoted key %s", l.num, key)
		}
		key = unq
	}
	rest = strings.TrimSpace(l.text[i+1:])
	if j := findComment(rest); j >= 0 {
		rest = strings.TrimSpace(rest[:j])
	}
	return key, rest, nil
}

// findComment locates an unquoted ` #` comment start.
func findComment(s string) int {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote != 0:
			if s[i] == inQuote {
				inQuote = 0
			}
		case s[i] == '"' || s[i] == '\'':
			inQuote = s[i]
		case s[i] == '#' && i > 0 && s[i-1] == ' ':
			return i
		}
	}
	return -1
}

// scalar types a scalar the way JSON unmarshalling would. One flow form is
// allowed as a convenience: a flat list of scalars `[a, b, c]` (no nesting,
// no quoted commas) — the natural spelling for `choices: [5ms, 10ms]`.
func scalar(s string) any {
	if j := findComment(s); j >= 0 {
		s = strings.TrimSpace(s[:j])
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		var out []any
		for _, part := range strings.Split(inner, ",") {
			out = append(out, scalar(strings.TrimSpace(part)))
		}
		return out
	}
	switch s {
	case "null", "~", "":
		return nil
	case "true":
		return true
	case "false":
		return false
	}
	if strings.HasPrefix(s, `"`) || strings.HasPrefix(s, `'`) {
		q := s[0]
		if len(s) >= 2 && s[len(s)-1] == q {
			if q == '\'' {
				return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
			}
			if unq, err := strconv.Unquote(s); err == nil {
				return unq
			}
		}
		return s
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
