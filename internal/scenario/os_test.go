package scenario

import (
	"os"
	"runtime"
	"testing"
)

func loadSmokeScenario(t *testing.T) *Scenario {
	t.Helper()
	b, err := os.ReadFile("../../scenarios/smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Load(b, "smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestOSEnvSmokeScenario runs the committed smoke scenario on the wall-clock
// backend. Compute sleeps (the RunOS default), so the run needs no RT
// scheduling privileges and is safe under -race on shared CI boxes. The live
// checker must stay silent: every order-free invariant (FIFO per topic,
// no-lost-entries, drain-before-retire, admission monotonicity, failure
// accounting) holds under real preemption, not just simulated time.
func TestOSEnvSmokeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("300ms wall-clock run")
	}
	sc := loadSmokeScenario(t)
	rep, err := RunOS(sc, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations on OS backend: %v", rep.Violations)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs ran on the OS backend")
	}
	if rep.Epochs == 0 {
		t.Fatal("no reconfiguration epochs: churn never fired on the OS backend")
	}
}

// TestOSEnvSmokeScenarioSpinning exercises the spin-compute, pinned-thread
// path — the configuration a real-time deployment would use. Spinning burns
// a full core per worker and pinning wants dedicated CPUs, so the test is
// gated: it only runs when the box advertises RT headroom via
// YASMIN_RT_TEST=1 and has spare cores.
func TestOSEnvSmokeScenarioSpinning(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	if os.Getenv("YASMIN_RT_TEST") == "" {
		t.Skip("set YASMIN_RT_TEST=1 to run the spinning/pinned OS leg (burns dedicated cores)")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("only %d CPUs; the spinning leg wants dedicated cores", runtime.NumCPU())
	}
	sc := loadSmokeScenario(t)
	rep, err := RunOS(sc, RunOpts{OS: OSRunOpts{Spin: true, Pin: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations on spinning OS backend: %v", rep.Violations)
	}
}
