package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/spec"
)

const smokeYAML = `
# Small but complete scenario: every schema feature in one file.
name: smoke
seed: 7
duration: 300ms
workers: 2
mapping: global
priority: edf
groups:
  - name: bulk
    count: 8
    period:
      min: 20ms
      max: 80ms
    utilization: 0.05
    offset_jitter: true
  - name: fast
    count: 4
    period:
      choices: [5ms, 10ms]
    utilization: 0.02
topics:
  - name: fan
    count: 2
    pubs: 2
    subs: 3
    capacity: 16
    policy: reject
    publish_period: 10ms
    consume_period: 15ms
churn:
  - at: 50ms
    every: 60ms
    count: 3
    action: ping_pong
  - at: 80ms
    every: 90ms
    count: 2
    action: retune
  - at: 100ms
    every: 120ms
    action: mode
failures:
  task_error_rate: 0.05
`

func TestLoadYAMLSmoke(t *testing.T) {
	sc, err := Load([]byte(smokeYAML), "smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "smoke" || sc.Workers != 2 {
		t.Fatalf("header mis-parsed: %+v", sc)
	}
	if len(sc.Groups) != 2 || sc.Groups[0].Count != 8 || !sc.Groups[0].OffsetJitter {
		t.Fatalf("groups mis-parsed: %+v", sc.Groups)
	}
	if sc.Groups[0].Period.Min.Std() != 20*time.Millisecond {
		t.Fatalf("period min = %v", sc.Groups[0].Period.Min.Std())
	}
	if got := sc.Groups[1].Period.Choices; len(got) != 2 || got[1].Std() != 10*time.Millisecond {
		t.Fatalf("choices mis-parsed: %v", got)
	}
	if len(sc.Topics) != 1 || sc.Topics[0].Subs != 3 {
		t.Fatalf("topics mis-parsed: %+v", sc.Topics)
	}
	if len(sc.Churn) != 3 || sc.Churn[2].Action != "mode" {
		t.Fatalf("churn mis-parsed: %+v", sc.Churn)
	}
	if sc.Failures.TaskErrorRate != 0.05 {
		t.Fatalf("failures mis-parsed: %+v", sc.Failures)
	}
	if sc.TaskCount() != 8+4+2*(2+3) {
		t.Fatalf("TaskCount = %d", sc.TaskCount())
	}
}

func TestLoadJSONEquivalent(t *testing.T) {
	js := `{
	  "name": "j", "seed": 1, "duration": "100ms", "workers": 1,
	  "groups": [{"name": "g", "count": 2, "period": {"min": "10ms", "max": "20ms"}, "utilization": 0.1}]
	}`
	sc, err := Load([]byte(js), "j.json")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Groups[0].Period.Max.Std() != 20*time.Millisecond {
		t.Fatalf("json period mis-parsed: %+v", sc.Groups[0].Period)
	}
}

func TestLoadRejectsMalformedYAML(t *testing.T) {
	cases := map[string]string{
		"tab indent":       "name: x\n\tworkers: 1\n",
		"flow collection":  "name: x\n[a, b]: 1\n",
		"missing space":    "name:x\n",
		"bad indentation":  "name: x\ngroups:\n   - name: g\n  count: 1\n",
		"duplicate key":    "name: x\nname: y\n",
		"sequence in map":  "name: x\n- item\n",
		"no key":           "name: x\njust words\n",
		"unknown field":    "name: x\nduration: 1s\nworkers: 1\nbogus_field: 3\ngroups:\n  - name: g\n    count: 1\n    period:\n      min: 1ms\n      max: 2ms\n    utilization: 0.1\n",
		"empty document":   "# only comments\n",
		"wrong value type": "name: x\nduration: 1s\nworkers: many\ngroups:\n  - name: g\n    count: 1\n    period:\n      min: 1ms\n      max: 2ms\n    utilization: 0.1\n",
	}
	for label, doc := range cases {
		if _, err := Load([]byte(doc), "bad.yaml"); err == nil {
			t.Errorf("%s: accepted %q", label, doc)
		}
	}
}

func TestValidateRejectsImpossibleDistributions(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name: "v", Duration: spec.Duration(time.Second), Workers: 2,
			Groups: []TaskGroup{{
				Name: "g", Count: 4,
				Period:      Dist{Min: spec.Duration(10 * time.Millisecond), Max: spec.Duration(20 * time.Millisecond)},
				Utilization: 0.1,
			}},
		}
	}
	cases := []struct {
		label string
		mut   func(*Scenario)
		want  string
	}{
		{"min > max", func(s *Scenario) { s.Groups[0].Period.Min = spec.Duration(time.Second) }, "impossible range"},
		{"zero period", func(s *Scenario) { s.Groups[0].Period = Dist{} }, "positive min and max"},
		{"negative choice", func(s *Scenario) { s.Groups[0].Period = Dist{Choices: []spec.Duration{-1}} }, "non-positive choice"},
		{"utilization > 1", func(s *Scenario) { s.Groups[0].Utilization = 1.5 }, "impossible utilization"},
		{"zero utilization", func(s *Scenario) { s.Groups[0].Utilization = 0 }, "impossible utilization"},
		{"overcommitted", func(s *Scenario) { s.Groups[0].Count = 400; s.Groups[0].Utilization = 0.9 }, "impossible load"},
		{"deadline ratio", func(s *Scenario) { s.Groups[0].DeadlineRatio = 2 }, "deadline ratio"},
		{"zero count", func(s *Scenario) { s.Groups[0].Count = 0 }, "count must be positive"},
		{"no name", func(s *Scenario) { s.Name = "" }, "needs a name"},
		{"no duration", func(s *Scenario) { s.Duration = 0 }, "positive duration"},
		{"no workers", func(s *Scenario) { s.Workers = 0 }, "workers"},
		{"bad mapping", func(s *Scenario) { s.Mapping = "clustered" }, "unknown mapping"},
		{"bad priority", func(s *Scenario) { s.Priority = "fifo" }, "unknown priority"},
		{"bad churn action", func(s *Scenario) { s.Churn = []ChurnPhase{{Action: "explode", Count: 1}} }, "unknown action"},
		{"churn no count", func(s *Scenario) { s.Churn = []ChurnPhase{{Action: "add"}} }, "count must be positive"},
		{"bad error rate", func(s *Scenario) { s.Failures.TaskErrorRate = 2 }, "error rate"},
		{"dup group", func(s *Scenario) { s.Groups = append(s.Groups, s.Groups[0]) }, "duplicate group"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mut(sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base scenario invalid: %v", err)
	}
}

func TestRunSmokeScenarioCleans(t *testing.T) {
	sc, err := Load([]byte(smokeYAML), "smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Jobs == 0 {
		t.Fatal("no jobs ran")
	}
	if rep.Published == 0 || rep.Delivered == 0 {
		t.Fatalf("data plane silent: published=%d delivered=%d", rep.Published, rep.Delivered)
	}
	if rep.Epochs == 0 {
		t.Fatal("no reconfiguration epochs committed")
	}
	if rep.Retires == 0 {
		t.Fatal("no retirements (ping-pong and mode churn should retire tasks)")
	}
	// Determinism: same seed, same counters.
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Jobs != rep.Jobs || rep2.Published != rep.Published ||
		rep2.Delivered != rep.Delivered || rep2.Epochs != rep.Epochs {
		t.Fatalf("non-deterministic: %+v vs %+v", rep, rep2)
	}
}

// accelYAML is a compact accelerator-contention scenario: one GPU, a
// 2-instance DSP pool, accel-bound groups and accel churn.
const accelYAML = `
name: accel-test
seed: 5
duration: 200ms
workers: 2
accel_wait_bound: 25ms
accels:
  - name: gpu
  - name: dsp
    count: 2
groups:
  - name: vision
    count: 3
    period:
      min: 15ms
      max: 30ms
    utilization: 0.08
    accel: gpu
    accel_share: 0.5
  - name: filt
    count: 3
    period:
      choices: [10ms]
    utilization: 0.05
    accel: dsp
    accel_share: 0.6
churn:
  - at: 50ms
    every: 60ms
    count: 2
    action: ping_pong
    accel: gpu
    accel_share: 0.4
    utilization: 0.03
`

func TestRunAccelScenarioCleans(t *testing.T) {
	sc, err := Load([]byte(accelYAML), "accel.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.AccelAcquires == 0 {
		t.Fatal("no accelerator acquisitions: accel groups never touched their pools")
	}
	if rep.AccelParks == 0 {
		t.Fatal("no parks: the scenario exercised no contention")
	}
	// Determinism: same seed, same arbitration.
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.AccelAcquires != rep.AccelAcquires || rep2.AccelParks != rep.AccelParks ||
		rep2.AccelBoosts != rep.AccelBoosts {
		t.Fatalf("non-deterministic arbitration: %+v vs %+v", rep, rep2)
	}
}

func TestRunInjectsFailures(t *testing.T) {
	sc, err := Load([]byte(smokeYAML), "smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 5% error rate over the churn jobs: expect at least one injected
	// error, and the checker verified the middleware counted exactly them.
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}
