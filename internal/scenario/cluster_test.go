package scenario

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

// clusterYAML is a compact 2-node cluster scenario without injected faults:
// the wire is perfect, so every single-node Reject invariant must hold
// end to end across it (no lossy relaxation).
const clusterYAML = `
name: cluster-test
seed: 3
duration: 300ms
workers: 2
nodes:
  count: 2
  sync_interval: 25ms
  clock_skew: [0ms, 3ms]
groups:
  - name: bg
    count: 3
    period:
      min: 20ms
      max: 60ms
    utilization: 0.05
    offset_jitter: true
topics:
  - name: link
    count: 2
    pubs: 1
    subs: 1
    capacity: 32
    policy: reject
    publish_period: 8ms
    consume_period: 8ms
    pub_nodes: [0]
    sub_nodes: [1]
churn:
  - at: 80ms
    every: 100ms
    count: 2
    action: cluster
`

func TestRunClusterLossless(t *testing.T) {
	sc, err := Load([]byte(clusterYAML), "cluster.yaml")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("expected 2 node reports, got %d", len(rep.Nodes))
	}
	if rep.Published == 0 || rep.Delivered == 0 {
		t.Fatalf("data plane silent: published=%d delivered=%d", rep.Published, rep.Delivered)
	}
	if rep.Epochs == 0 {
		t.Fatal("no cluster epochs committed")
	}
	n0, n1 := rep.Nodes[0], rep.Nodes[1]
	if n0.FramesSent == 0 {
		t.Fatal("node 0 forwarded nothing over the wire")
	}
	// A perfect wire: every frame sent arrives, nothing dropped anywhere.
	if n1.FramesReceived != n0.FramesSent {
		t.Fatalf("node 1 received %d of %d frames on a lossless wire", n1.FramesReceived, n0.FramesSent)
	}
	if n0.FramesDropped+n1.FramesDropped != 0 {
		t.Fatalf("drops on a lossless wire: %d + %d", n0.FramesDropped, n1.FramesDropped)
	}
	// PTP-style sync converged: node 1 runs 3ms skewed and must know it.
	if n1.ClockSamples == 0 {
		t.Fatal("node 1 completed no sync exchanges")
	}
	if n1.ClockOffsetNS == 0 {
		t.Fatal("node 1 estimated no clock offset despite 3ms skew")
	}
	if n0.Jobs == 0 || n1.Jobs == 0 {
		t.Fatalf("idle node: jobs %d / %d", n0.Jobs, n1.Jobs)
	}
}

func TestRunClusterScenarioFile(t *testing.T) {
	sc, err := LoadFile(filepath.Join("..", "..", "scenarios", "cluster.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.Nodes) != 3 {
		t.Fatalf("expected 3 node reports, got %d", len(rep.Nodes))
	}
	if rep.Epochs < 2 {
		t.Fatalf("expected >= 2 cluster epochs (churn at 100ms every 120ms over 400ms), got %d", rep.Epochs)
	}
	var sent, recv, injected uint64
	for _, n := range rep.Nodes {
		sent += n.FramesSent
		recv += n.FramesReceived
		injected += n.InjectedLoss
	}
	if sent == 0 || recv == 0 {
		t.Fatalf("wire silent: sent=%d received=%d", sent, recv)
	}
	if injected == 0 {
		t.Fatal("loss_rate 0.1 injected no losses — the fault path was never exercised")
	}
	// Determinism: same seed, same counters, same losses.
	rep2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Jobs != rep.Jobs || rep2.Published != rep.Published ||
		rep2.Delivered != rep.Delivered || rep2.Epochs != rep.Epochs {
		t.Fatalf("non-deterministic: %+v vs %+v", rep, rep2)
	}
	for i := range rep.Nodes {
		if rep2.Nodes[i].NodeStats != rep.Nodes[i].NodeStats {
			t.Fatalf("node %d stats non-deterministic: %+v vs %+v", i, rep.Nodes[i].NodeStats, rep2.Nodes[i].NodeStats)
		}
	}
}

// exportClusterScenario runs a cluster scenario with one file-backed
// telemetry pipeline per node and returns the replayed streams.
func exportClusterScenario(t *testing.T, yaml string) ([]*telemetry.Stream, *Report) {
	t.Helper()
	sc, err := Load([]byte(yaml), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	nodes := sc.Nodes.Count
	pipes := make([]*telemetry.Pipeline, nodes)
	paths := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		paths[i] = filepath.Join(dir, "export.node"+string(rune('0'+i))+".jsonl")
		sink, err := telemetry.NewFileSink(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if pipes[i], err = telemetry.New(sink, telemetry.Options{Node: i}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := RunWith(sc, RunOpts{NodeTelemetry: pipes})
	for i, p := range pipes {
		if cerr := p.Close(); cerr != nil {
			t.Fatalf("node %d pipeline close: %v", i, cerr)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("live run not clean: %v", rep.Violations)
	}
	sts := make([]*telemetry.Stream, nodes)
	for i := range paths {
		if pipes[i].Stats().Dropped != 0 {
			t.Fatalf("node %d blocking exporter dropped %d records", i, pipes[i].Stats().Dropped)
		}
		if sts[i], err = telemetry.ReplayFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sts, rep
}

func TestCheckStreamsReconcilesClusterExports(t *testing.T) {
	sts, rep := exportClusterScenario(t, clusterYAML)
	if v := CheckStreams(sts, StreamCheckOpts{}); len(v) != 0 {
		t.Fatalf("per-node exports do not reconcile: %v", v)
	}
	// The exports carry the run: frame records match the live counters and
	// every node logged the full cluster epoch history.
	var sends, recvs int
	for _, st := range sts {
		for _, f := range st.Frames {
			switch f.Dir {
			case telemetry.FrameSend:
				sends++
			case telemetry.FrameRecv:
				recvs++
			}
		}
		if len(st.CEpochs) != rep.Epochs {
			t.Fatalf("node %d logged %d cluster epochs, run committed %d", st.Node(), len(st.CEpochs), rep.Epochs)
		}
	}
	if sends == 0 || recvs != sends {
		t.Fatalf("frame records don't close: %d sends, %d recvs on a lossless wire", sends, recvs)
	}
	// A single node's file still checks on its own (absent peers are left
	// unreconciled, not flagged).
	if v := CheckStreams(sts[:1], StreamCheckOpts{}); len(v) != 0 {
		t.Fatalf("single-file subset flagged: %v", v)
	}
}

// handStream builds a telemetry stream as an export replay would: events
// stamped with one node id, seqs 1..n, and a consistent trailer.
func handStream(node int, evs ...telemetry.Event) *telemetry.Stream {
	st := &telemetry.Stream{}
	for i := range evs {
		evs[i].Node = node
		evs[i].Seq = uint64(i + 1)
		st.Events = append(st.Events, evs[i])
		switch evs[i].Kind {
		case telemetry.KindFrame:
			st.Frames = append(st.Frames, evs[i].Frame)
		case telemetry.KindClusterEpoch:
			st.CEpochs = append(st.CEpochs, evs[i].CEpoch)
		}
	}
	st.Summary = &telemetry.Stats{Published: uint64(len(evs)), Exported: uint64(len(evs))}
	return st
}

func frameEv(dir telemetry.FrameDir, origin, dst int, fseq uint64) telemetry.Event {
	return telemetry.Event{Kind: telemetry.KindFrame, Frame: telemetry.FrameRecord{
		Dir: dir, Origin: origin, Dst: dst, Topic: "t-0", Pub: 0, FSeq: fseq, Epoch: 1,
	}}
}

func cepochEv(epoch uint64) telemetry.Event {
	return telemetry.Event{Kind: telemetry.KindClusterEpoch, CEpoch: telemetry.ClusterEpochRecord{Epoch: epoch}}
}

func expectViolation(t *testing.T, label, want string, v []string) {
	t.Helper()
	for _, s := range v {
		if strings.Contains(s, want) {
			t.Logf("%s: detected: %s", label, s)
			return
		}
	}
	t.Errorf("%s: no violation mentions %q; got %v", label, want, v)
}

// TestCheckStreamsFlagsSeededClusterViolations seeds the three cluster
// failure modes the offline reconciliation exists to catch — a frame that
// vanished between nodes, a node that ran in a stale epoch, and a transport
// that broke per-publisher FIFO — and proves CheckStreams names each one.
func TestCheckStreamsFlagsSeededClusterViolations(t *testing.T) {
	t.Run("dropped frame", func(t *testing.T) {
		// Node 0 sends seqs 1..3; node 1 receives 1 and 3 and never accounts
		// for 2 — silent loss, distinct from an honest recorded drop.
		n0 := handStream(0,
			frameEv(telemetry.FrameSend, 0, 1, 1),
			frameEv(telemetry.FrameSend, 0, 1, 2),
			frameEv(telemetry.FrameSend, 0, 1, 3),
		)
		n1 := handStream(1,
			frameEv(telemetry.FrameRecv, 0, 1, 1),
			frameEv(telemetry.FrameRecv, 0, 1, 3),
		)
		expectViolation(t, "dropped frame", "silent loss",
			CheckStreams([]*telemetry.Stream{n0, n1}, StreamCheckOpts{}))
		// The same gap with a recorded drop is clean: the transport owned up.
		n1ok := handStream(1,
			frameEv(telemetry.FrameRecv, 0, 1, 1),
			frameEv(telemetry.FrameDrop, 0, 1, 2),
			frameEv(telemetry.FrameRecv, 0, 1, 3),
		)
		if v := CheckStreams([]*telemetry.Stream{n0, n1ok}, StreamCheckOpts{}); len(v) != 0 {
			t.Fatalf("accounted drop flagged: %v", v)
		}
	})

	t.Run("stale epoch", func(t *testing.T) {
		// Node 1 missed the second commit: its epoch history is a prefix of
		// node 0's, meaning everything it did after the divergence ran stale.
		n0 := handStream(0, cepochEv(1), cepochEv(2))
		n1 := handStream(1, cepochEv(1))
		expectViolation(t, "stale epoch", "stale-epoch",
			CheckStreams([]*telemetry.Stream{n0, n1}, StreamCheckOpts{}))
	})

	t.Run("transport FIFO break", func(t *testing.T) {
		// Node 1 delivered seq 1 after seq 2 from the same publisher: the
		// ingress seq filter should have dropped the latecomer.
		n0 := handStream(0,
			frameEv(telemetry.FrameSend, 0, 1, 1),
			frameEv(telemetry.FrameSend, 0, 1, 2),
		)
		n1 := handStream(1,
			frameEv(telemetry.FrameRecv, 0, 1, 2),
			frameEv(telemetry.FrameRecv, 0, 1, 1),
		)
		expectViolation(t, "FIFO break", "transport FIFO broken",
			CheckStreams([]*telemetry.Stream{n0, n1}, StreamCheckOpts{}))
	})

	t.Run("phantom and duplicate", func(t *testing.T) {
		// A receive with no matching send, and the same frame sent twice.
		n0 := handStream(0,
			frameEv(telemetry.FrameSend, 0, 1, 1),
			frameEv(telemetry.FrameSend, 0, 1, 1),
		)
		n1 := handStream(1,
			frameEv(telemetry.FrameRecv, 0, 1, 1),
			frameEv(telemetry.FrameRecv, 0, 1, 7),
		)
		v := CheckStreams([]*telemetry.Stream{n0, n1}, StreamCheckOpts{})
		expectViolation(t, "duplicate send", "sent twice", v)
		expectViolation(t, "phantom", "phantom frame", v)
	})

	t.Run("conflicting node stamps", func(t *testing.T) {
		a := handStream(1, cepochEv(1))
		b := handStream(1, cepochEv(1))
		expectViolation(t, "duplicate node", "already supplied",
			CheckStreams([]*telemetry.Stream{a, b}, StreamCheckOpts{}))
	})
}
