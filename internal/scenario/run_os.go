package scenario

import (
	"fmt"

	"github.com/yasmin-rt/yasmin/internal/rt"
)

// RunOS executes the scenario on the wall-clock backend (rt.OSEnv) — the
// second leg of the differential runner. The same spec generation, churn
// driver and checker run unchanged; only the environment differs, so any
// divergence in checker-visible behaviour is the middleware's, not the
// harness's. Timing-derived counters (jobs, publishes) legitimately differ
// from the simulation: the OS scheduler preempts whenever it pleases.
// Compute defaults to sleeping (no CPU burn, no RT privileges needed);
// opts.OS selects spinning and thread pinning for machines that allow it.
//
// Cluster scenarios are rejected: the cluster data plane is simulation-only.
func RunOS(sc *Scenario, opts RunOpts) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Nodes != nil {
		return nil, fmt.Errorf("scenario %s: cluster scenarios run on the simulation backend only", sc.Name)
	}
	env := rt.NewOSEnv()
	env.Spin = opts.OS.Spin
	env.PinThreads = opts.OS.Pin
	return runScenario(sc, opts, runBackend{
		env:   env,
		drive: func() error { env.Wait(); return nil },
		steps: func() uint64 { return 0 },
	})
}
