package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/yasmin-rt/yasmin/internal/spec"
)

// WriteYAML serializes the scenario back into the dependency-free YAML
// subset yaml.go parses, so shrunk fuzz reproducers can be committed
// directly under scenarios/corpus/. The emitter is typed field-by-field
// (no reflection): Load(WriteYAML(sc)) round-trips to a DeepEqual-identical
// scenario, which write_yaml_test.go proves on every generated scenario.
// Zero-valued optional fields are omitted, mirroring their json omitempty
// tags, so a round-tripped scenario compares equal rather than gaining
// explicit zeros.
func (sc *Scenario) WriteYAML() []byte {
	w := &yamlWriter{}
	w.str(0, "name", sc.Name)
	if sc.Seed != 0 {
		w.int(0, "seed", sc.Seed)
	}
	w.dur(0, "duration", sc.Duration)
	w.int(0, "workers", int64(sc.Workers))
	if sc.Mapping != "" {
		w.str(0, "mapping", sc.Mapping)
	}
	if sc.Priority != "" {
		w.str(0, "priority", sc.Priority)
	}
	if sc.SchedulerPeriod != 0 {
		w.dur(0, "scheduler_period", sc.SchedulerPeriod)
	}
	if sc.MaxPendingJobs != 0 {
		w.int(0, "max_pending_jobs", int64(sc.MaxPendingJobs))
	}
	if ns := sc.Nodes; ns != nil {
		w.key(0, "nodes")
		w.int(2, "count", int64(ns.Count))
		if ns.LossRate != 0 {
			w.float(2, "loss_rate", ns.LossRate)
		}
		if ns.ReorderRate != 0 {
			w.float(2, "reorder_rate", ns.ReorderRate)
		}
		if ns.SyncInterval != 0 {
			w.dur(2, "sync_interval", ns.SyncInterval)
		}
		if len(ns.ClockSkew) > 0 {
			w.durList(2, "clock_skew", ns.ClockSkew)
		}
	}
	if len(sc.Accels) > 0 {
		w.key(0, "accels")
		for i := range sc.Accels {
			a := &sc.Accels[i]
			w.item(2, "name", yamlString(a.Name))
			if a.Count != 0 {
				w.int(4, "count", int64(a.Count))
			}
		}
	}
	if sc.AccelWaitBound != 0 {
		w.dur(0, "accel_wait_bound", sc.AccelWaitBound)
	}
	if len(sc.Groups) > 0 {
		w.key(0, "groups")
		for i := range sc.Groups {
			g := &sc.Groups[i]
			w.item(2, "name", yamlString(g.Name))
			w.int(4, "count", int64(g.Count))
			w.dist(4, "period", &g.Period)
			w.float(4, "utilization", g.Utilization)
			if g.DeadlineRatio != 0 {
				w.float(4, "deadline_ratio", g.DeadlineRatio)
			}
			if g.OffsetJitter {
				w.bool(4, "offset_jitter", true)
			}
			if g.Accel != "" {
				w.str(4, "accel", g.Accel)
			}
			if g.AccelShare != 0 {
				w.float(4, "accel_share", g.AccelShare)
			}
			if g.Accel2 != "" {
				w.str(4, "accel2", g.Accel2)
			}
			if g.Accel2Share != 0 {
				w.float(4, "accel2_share", g.Accel2Share)
			}
			if g.Node != 0 {
				w.int(4, "node", int64(g.Node))
			}
		}
	}
	if len(sc.Topics) > 0 {
		w.key(0, "topics")
		for i := range sc.Topics {
			tp := &sc.Topics[i]
			w.item(2, "name", yamlString(tp.Name))
			w.int(4, "count", int64(tp.Count))
			w.int(4, "pubs", int64(tp.Pubs))
			w.int(4, "subs", int64(tp.Subs))
			w.int(4, "capacity", int64(tp.Capacity))
			if tp.Policy != "" {
				w.str(4, "policy", tp.Policy)
			}
			w.dur(4, "publish_period", tp.PublishPeriod)
			w.dur(4, "consume_period", tp.ConsumePeriod)
			if len(tp.PubNodes) > 0 {
				w.intList(4, "pub_nodes", tp.PubNodes)
			}
			if len(tp.SubNodes) > 0 {
				w.intList(4, "sub_nodes", tp.SubNodes)
			}
		}
	}
	if len(sc.Churn) > 0 {
		w.key(0, "churn")
		for i := range sc.Churn {
			cp := &sc.Churn[i]
			w.item(2, "at", yamlDur(cp.At))
			if cp.Every != 0 {
				w.dur(4, "every", cp.Every)
			}
			w.str(4, "action", cp.Action)
			if cp.Count != 0 {
				w.int(4, "count", int64(cp.Count))
			}
			if cp.Period.Min != 0 || cp.Period.Max != 0 || len(cp.Period.Choices) > 0 {
				w.dist(4, "period", &cp.Period)
			}
			if cp.Utilization != 0 {
				w.float(4, "utilization", cp.Utilization)
			}
			if cp.Accel != "" {
				w.str(4, "accel", cp.Accel)
			}
			if cp.AccelShare != 0 {
				w.float(4, "accel_share", cp.AccelShare)
			}
		}
	}
	if sc.Failures.TaskErrorRate != 0 {
		w.key(0, "failures")
		w.float(2, "task_error_rate", sc.Failures.TaskErrorRate)
	}
	return []byte(w.b.String())
}

// yamlWriter accumulates indented "key: value" lines.
type yamlWriter struct{ b strings.Builder }

func (w *yamlWriter) line(indent int, s string) {
	w.b.WriteString(strings.Repeat(" ", indent))
	w.b.WriteString(s)
	w.b.WriteByte('\n')
}

// key opens a nested block: "key:".
func (w *yamlWriter) key(indent int, k string) { w.line(indent, k+":") }

// item starts a sequence element with its first key: "- key: value".
func (w *yamlWriter) item(indent int, k, v string) { w.line(indent, "- "+k+": "+v) }

func (w *yamlWriter) str(indent int, k, v string) { w.line(indent, k+": "+yamlString(v)) }

func (w *yamlWriter) int(indent int, k string, v int64) {
	w.line(indent, k+": "+strconv.FormatInt(v, 10))
}

func (w *yamlWriter) float(indent int, k string, v float64) {
	w.line(indent, k+": "+strconv.FormatFloat(v, 'g', -1, 64))
}

func (w *yamlWriter) bool(indent int, k string, v bool) {
	w.line(indent, k+": "+strconv.FormatBool(v))
}

func (w *yamlWriter) dur(indent int, k string, v spec.Duration) {
	w.line(indent, k+": "+yamlDur(v))
}

// dist writes a Dist as a nested block.
func (w *yamlWriter) dist(indent int, k string, d *Dist) {
	w.key(indent, k)
	if len(d.Choices) > 0 {
		w.durList(indent+2, "choices", d.Choices)
		return
	}
	if d.Min != 0 {
		w.dur(indent+2, "min", d.Min)
	}
	if d.Max != 0 {
		w.dur(indent+2, "max", d.Max)
	}
}

// intList / durList write the one flow form the parser accepts: a flat
// scalar list.
func (w *yamlWriter) intList(indent int, k string, vs []int) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	w.line(indent, fmt.Sprintf("%s: [%s]", k, strings.Join(parts, ", ")))
}

func (w *yamlWriter) durList(indent int, k string, vs []spec.Duration) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = yamlDur(v)
	}
	w.line(indent, fmt.Sprintf("%s: [%s]", k, strings.Join(parts, ", ")))
}

// yamlDur renders a duration the way scenario files spell them ("250ms").
func yamlDur(d spec.Duration) string { return d.Std().String() }

// yamlString quotes s only when a bare spelling would parse as something
// else (number, bool, null, flow list, comment, nested key) or be
// whitespace-mangled.
func yamlString(s string) string {
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

func needsQuoting(s string) bool {
	switch s {
	case "", "null", "~", "true", "false":
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	if strings.HasPrefix(s, "-") || strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") ||
		strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return true
	}
	return strings.ContainsAny(s, ":#\n\t,]}")
}
