package scenario

import (
	"strings"
	"testing"

	"github.com/yasmin-rt/yasmin/internal/core"
)

// feed replays a publish/take trace through a checker topic.
func feedChecker(policy core.OverflowPolicy) (*Checker, int) {
	ck := NewChecker()
	ti := ck.addTopic("t", policy, 4, 2, 1)
	return ck, ti
}

func TestCheckerAcceptsCleanFIFO(t *testing.T) {
	ck, ti := feedChecker(core.Reject)
	for seq := int64(1); seq <= 5; seq++ {
		ck.notePublished(ti, 0, seq)
		ck.noteTaken(ti, 0, seqEncode(0, seq))
	}
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("clean trace flagged: %v", ck.violations)
	}
}

// TestCheckerCatchesSeededFIFOViolation feeds the checker a deliberately
// broken delivery order and expects it to object — the checker must be able
// to fail, or a clean scale run proves nothing.
func TestCheckerCatchesSeededFIFOViolation(t *testing.T) {
	cases := []struct {
		label  string
		policy core.OverflowPolicy
		feed   func(ck *Checker, ti int)
		want   string
	}{
		{
			"reorder", core.Reject,
			func(ck *Checker, ti int) {
				ck.notePublished(ti, 0, 1)
				ck.notePublished(ti, 0, 2)
				ck.noteTaken(ti, 0, seqEncode(0, 2))
				ck.noteTaken(ti, 0, seqEncode(0, 1)) // delivered backwards
			},
			"FIFO violated",
		},
		{
			"duplicate", core.Reject,
			func(ck *Checker, ti int) {
				ck.notePublished(ti, 0, 1)
				ck.noteTaken(ti, 0, seqEncode(0, 1))
				ck.noteTaken(ti, 0, seqEncode(0, 1)) // delivered twice
			},
			"FIFO violated",
		},
		{
			"gap under reject", core.Reject,
			func(ck *Checker, ti int) {
				for seq := int64(1); seq <= 3; seq++ {
					ck.notePublished(ti, 0, seq)
				}
				ck.noteTaken(ti, 0, seqEncode(0, 1))
				ck.noteTaken(ti, 0, seqEncode(0, 3)) // 2 vanished
			},
			"entries lost",
		},
		{
			"reorder across drops", core.DropOldest,
			func(ck *Checker, ti int) {
				for seq := int64(1); seq <= 8; seq++ {
					ck.notePublished(ti, 0, seq)
				}
				ck.noteTaken(ti, 0, seqEncode(0, 5)) // gaps fine under DropOldest
				ck.noteTaken(ti, 0, seqEncode(0, 4)) // going backwards is not
			},
			"FIFO violated",
		},
		{
			"foreign value", core.Reject,
			func(ck *Checker, ti int) {
				ck.noteTaken(ti, 0, "not a sequence")
			},
			"foreign value",
		},
	}
	for _, tc := range cases {
		ck, ti := feedChecker(tc.policy)
		tc.feed(ck, ti)
		ck.mu.Lock()
		vs := append([]string(nil), ck.violations...)
		ck.mu.Unlock()
		if len(vs) == 0 {
			t.Errorf("%s: checker stayed silent", tc.label)
			continue
		}
		found := false
		for _, v := range vs {
			if strings.Contains(v, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.label, vs, tc.want)
		}
	}
}

func TestCheckerGapAllowedUnderDropOldest(t *testing.T) {
	ck, ti := feedChecker(core.DropOldest)
	for seq := int64(1); seq <= 10; seq++ {
		ck.notePublished(ti, 0, seq)
	}
	ck.noteTaken(ti, 0, seqEncode(0, 7)) // 1..6 dropped: legal
	ck.noteTaken(ti, 0, seqEncode(0, 10))
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("legal conflation flagged: %v", ck.violations)
	}
}

func TestCheckerSeparatesPublishers(t *testing.T) {
	// Per-publisher FIFO: interleaving publishers is fine as long as each
	// publisher's own sequence stays ordered.
	ck, ti := feedChecker(core.Reject)
	ck.notePublished(ti, 0, 1)
	ck.notePublished(ti, 1, 1)
	ck.notePublished(ti, 0, 2)
	ck.noteTaken(ti, 0, seqEncode(1, 1))
	ck.noteTaken(ti, 0, seqEncode(0, 1))
	ck.noteTaken(ti, 0, seqEncode(0, 2))
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("legal interleaving flagged: %v", ck.violations)
	}
}
