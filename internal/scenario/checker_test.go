package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// feed replays a publish/take trace through a checker topic.
func feedChecker(policy core.OverflowPolicy) (*Checker, int) {
	ck := NewChecker()
	ti := ck.addTopic("t", policy, 4, 2, 1)
	return ck, ti
}

func TestCheckerAcceptsCleanFIFO(t *testing.T) {
	ck, ti := feedChecker(core.Reject)
	for seq := int64(1); seq <= 5; seq++ {
		ck.notePublished(ti, 0, seq)
		ck.noteTaken(ti, 0, seqEncode(0, seq))
	}
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("clean trace flagged: %v", ck.violations)
	}
}

// TestCheckerCatchesSeededFIFOViolation feeds the checker a deliberately
// broken delivery order and expects it to object — the checker must be able
// to fail, or a clean scale run proves nothing.
func TestCheckerCatchesSeededFIFOViolation(t *testing.T) {
	cases := []struct {
		label  string
		policy core.OverflowPolicy
		feed   func(ck *Checker, ti int)
		want   string
	}{
		{
			"reorder", core.Reject,
			func(ck *Checker, ti int) {
				ck.notePublished(ti, 0, 1)
				ck.notePublished(ti, 0, 2)
				ck.noteTaken(ti, 0, seqEncode(0, 2))
				ck.noteTaken(ti, 0, seqEncode(0, 1)) // delivered backwards
			},
			"FIFO violated",
		},
		{
			"duplicate", core.Reject,
			func(ck *Checker, ti int) {
				ck.notePublished(ti, 0, 1)
				ck.noteTaken(ti, 0, seqEncode(0, 1))
				ck.noteTaken(ti, 0, seqEncode(0, 1)) // delivered twice
			},
			"FIFO violated",
		},
		{
			"gap under reject", core.Reject,
			func(ck *Checker, ti int) {
				for seq := int64(1); seq <= 3; seq++ {
					ck.notePublished(ti, 0, seq)
				}
				ck.noteTaken(ti, 0, seqEncode(0, 1))
				ck.noteTaken(ti, 0, seqEncode(0, 3)) // 2 vanished
			},
			"entries lost",
		},
		{
			"reorder across drops", core.DropOldest,
			func(ck *Checker, ti int) {
				for seq := int64(1); seq <= 8; seq++ {
					ck.notePublished(ti, 0, seq)
				}
				ck.noteTaken(ti, 0, seqEncode(0, 5)) // gaps fine under DropOldest
				ck.noteTaken(ti, 0, seqEncode(0, 4)) // going backwards is not
			},
			"FIFO violated",
		},
		{
			"foreign value", core.Reject,
			func(ck *Checker, ti int) {
				ck.noteTaken(ti, 0, "not a sequence")
			},
			"foreign value",
		},
	}
	for _, tc := range cases {
		ck, ti := feedChecker(tc.policy)
		tc.feed(ck, ti)
		vs := ck.Violations()
		if len(vs) == 0 {
			t.Errorf("%s: checker stayed silent", tc.label)
			continue
		}
		found := false
		for _, v := range vs {
			if strings.Contains(v.Msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.label, vs, tc.want)
		}
	}
}

func TestCheckerGapAllowedUnderDropOldest(t *testing.T) {
	ck, ti := feedChecker(core.DropOldest)
	for seq := int64(1); seq <= 10; seq++ {
		ck.notePublished(ti, 0, seq)
	}
	ck.noteTaken(ti, 0, seqEncode(0, 7)) // 1..6 dropped: legal
	ck.noteTaken(ti, 0, seqEncode(0, 10))
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("legal conflation flagged: %v", ck.violations)
	}
}

// accelEv builds one arbitration event for replay tests.
func accelEv(kind trace.AccelEventKind, inst, pool, task string, job, prio int64, at time.Duration) trace.AccelEvent {
	return trace.AccelEvent{Kind: kind, Accel: inst, Pool: pool, Task: task, Job: job, Prio: prio, At: at}
}

func TestCheckerAcceptsCleanAccelTrace(t *testing.T) {
	ck := NewChecker()
	ck.accelWaitBound = 10 * time.Millisecond
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ck.checkAccel([]trace.AccelEvent{
		accelEv(trace.AccelAcquire, "gpu", "gpu", "holder", 1, 40, 0),
		accelEv(trace.AccelPark, "gpu", "gpu", "urgent", 1, 10, ms(1)),
		accelEv(trace.AccelBoost, "gpu", "gpu", "holder", 1, 10, ms(1)),
		accelEv(trace.AccelRelease, "gpu", "gpu", "holder", 1, 40, ms(3)),
		accelEv(trace.AccelGrant, "gpu", "gpu", "urgent", 1, 10, ms(3)),
		accelEv(trace.AccelRelease, "gpu", "gpu", "urgent", 1, 10, ms(5)),
	})
	if len(ck.violations) != 0 {
		t.Fatalf("clean PIP trace flagged: %v", ck.violations)
	}
	st := ck.AccelStats()
	if st.Acquires != 2 || st.Parks != 1 || st.Boosts != 1 || st.MaxWait != ms(2) {
		t.Errorf("stats = %+v, want 2 acquires, 1 park, 1 boost, 2ms max wait", st)
	}
}

// TestCheckerCatchesSeededAccelViolations feeds deliberately broken
// arbitration traces: the accel invariants must be able to fail or a clean
// scenario run proves nothing.
func TestCheckerCatchesSeededAccelViolations(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		label string
		bound time.Duration
		trace []trace.AccelEvent
		want  string
	}{
		{
			"less urgent overtakes parked waiter", 0,
			[]trace.AccelEvent{
				accelEv(trace.AccelPark, "gpu", "gpu", "urgent", 1, 10, 0),
				accelEv(trace.AccelAcquire, "gpu", "gpu", "sneaky", 1, 50, ms(1)),
			},
			"more urgent",
		},
		{
			"inversion exceeds the wait bound", ms(5),
			[]trace.AccelEvent{
				accelEv(trace.AccelAcquire, "gpu", "gpu", "holder", 1, 40, 0),
				accelEv(trace.AccelPark, "gpu", "gpu", "urgent", 1, 10, ms(1)),
				accelEv(trace.AccelRelease, "gpu", "gpu", "holder", 1, 40, ms(9)),
				accelEv(trace.AccelGrant, "gpu", "gpu", "urgent", 1, 10, ms(9)),
			},
			"inversion not bounded",
		},
		{
			"grant of a still-held instance", 0,
			[]trace.AccelEvent{
				accelEv(trace.AccelAcquire, "gpu", "gpu", "holder", 1, 40, 0),
				accelEv(trace.AccelPark, "gpu", "gpu", "urgent", 1, 10, ms(1)),
				accelEv(trace.AccelGrant, "gpu", "gpu", "urgent", 1, 10, ms(2)),
			},
			"still holds",
		},
		{
			"release without a hold", 0,
			[]trace.AccelEvent{
				accelEv(trace.AccelRelease, "gpu", "gpu", "ghost", 1, 40, ms(1)),
			},
			"no hold",
		},
	}
	for _, tc := range cases {
		ck := NewChecker()
		ck.accelWaitBound = tc.bound
		ck.checkAccel(tc.trace)
		if len(ck.violations) == 0 {
			t.Errorf("%s: checker stayed silent", tc.label)
			continue
		}
		found := false
		for _, v := range ck.violations {
			if strings.Contains(v.Msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.label, ck.violations, tc.want)
		}
	}
}

func TestCheckerSeparatesPublishers(t *testing.T) {
	// Per-publisher FIFO: interleaving publishers is fine as long as each
	// publisher's own sequence stays ordered.
	ck, ti := feedChecker(core.Reject)
	ck.notePublished(ti, 0, 1)
	ck.notePublished(ti, 1, 1)
	ck.notePublished(ti, 0, 2)
	ck.noteTaken(ti, 0, seqEncode(1, 1))
	ck.noteTaken(ti, 0, seqEncode(0, 1))
	ck.noteTaken(ti, 0, seqEncode(0, 2))
	ck.mu.Lock()
	got := len(ck.violations)
	ck.mu.Unlock()
	if got != 0 {
		t.Fatalf("legal interleaving flagged: %v", ck.violations)
	}
}
