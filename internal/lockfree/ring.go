package lockfree

import (
	"fmt"
	"sync/atomic"
)

// SPSCRing is a single-producer single-consumer lock-free ring buffer with a
// fixed, power-of-two capacity. It backs the wall-clock runtime's FIFO
// channels between a producing and a consuming worker. All storage is
// allocated at construction.
type SPSCRing[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // consumer position
	tail atomic.Uint64 // producer position
}

// NewSPSCRing creates a ring with capacity rounded up to a power of two.
func NewSPSCRing[T any](capacity int) (*SPSCRing[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("lockfree: ring capacity must be >= 1, got %d", capacity)
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSCRing[T]{buf: make([]T, n), mask: uint64(n - 1)}, nil
}

// Cap returns the usable capacity.
func (r *SPSCRing[T]) Cap() int { return len(r.buf) }

// Len returns the current element count (approximate under concurrency).
func (r *SPSCRing[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Push appends v; it fails (returns false) when the ring is full.
// Only one goroutine may push.
//
//yasmin:noalloc
func (r *SPSCRing[T]) Push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// Pop removes the oldest element; ok is false when the ring is empty.
// Only one goroutine may pop.
//
//yasmin:noalloc
func (r *SPSCRing[T]) Pop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// Peek returns the oldest element without removing it.
func (r *SPSCRing[T]) Peek() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	return r.buf[h&r.mask], true
}

// MPSCRing is a bounded multi-producer single-consumer queue: the fan-in
// stage of a pub-sub topic on the wall-clock backend, where any number of
// publisher threads push concurrently and the (lock-serialised) consumer
// side drains. Producers claim slots with one CAS on the enqueue ticket
// (Vyukov's scheme); the single consumer needs no CAS at all, making Pop a
// plain load/store pair. Per-producer FIFO order is preserved: a producer's
// ticket order is its program order.
type MPSCRing[T any] struct {
	slots []mpmcSlot[T]
	mask  uint64
	enq   atomic.Uint64
	deq   atomic.Uint64 // written by the single consumer only
}

// NewMPSCRing creates a queue with capacity rounded up to a power of two.
func NewMPSCRing[T any](capacity int) (*MPSCRing[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("lockfree: ring capacity must be >= 1, got %d", capacity)
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &MPSCRing[T]{slots: make([]mpmcSlot[T], n), mask: uint64(n - 1)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q, nil
}

// Cap returns the queue capacity.
func (q *MPSCRing[T]) Cap() int { return len(q.slots) }

// Len returns the approximate element count.
func (q *MPSCRing[T]) Len() int {
	n := int64(q.enq.Load()) - int64(q.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Push appends v; returns false when full. Safe from any number of
// goroutines.
//
//yasmin:noalloc
func (q *MPSCRing[T]) Push(v T) bool {
	for {
		pos := q.enq.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos: // slot free for this ticket
			if q.enq.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos: // queue full
			return false
		default: // another producer advanced; retry
		}
	}
}

// Pop removes the oldest element; ok is false when empty (or when the
// oldest producer has claimed its slot but not finished writing it — the
// consumer simply retries on its next drain). Only ONE goroutine may pop.
//
//yasmin:noalloc
func (q *MPSCRing[T]) Pop() (v T, ok bool) {
	pos := q.deq.Load()
	slot := &q.slots[pos&q.mask]
	if slot.seq.Load() != pos+1 {
		return v, false
	}
	v = slot.val
	var zero T
	slot.val = zero
	slot.seq.Store(pos + uint64(len(q.slots)))
	q.deq.Store(pos + 1)
	return v, true
}

// MPMCRing is a bounded multi-producer multi-consumer queue following
// Vyukov's array-based design: each slot carries a sequence number so
// producers and consumers claim slots with a single CAS each and never pass
// one another. Capacity is fixed at construction (power of two).
type MPMCRing[T any] struct {
	slots []mpmcSlot[T]
	mask  uint64
	enq   atomic.Uint64
	deq   atomic.Uint64
}

type mpmcSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// NewMPMCRing creates a queue with capacity rounded up to a power of two.
func NewMPMCRing[T any](capacity int) (*MPMCRing[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("lockfree: ring capacity must be >= 1, got %d", capacity)
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &MPMCRing[T]{slots: make([]mpmcSlot[T], n), mask: uint64(n - 1)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q, nil
}

// Cap returns the queue capacity.
func (q *MPMCRing[T]) Cap() int { return len(q.slots) }

// Len returns the approximate element count.
func (q *MPMCRing[T]) Len() int {
	n := int64(q.enq.Load()) - int64(q.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Push appends v; returns false when full.
//
//yasmin:noalloc
func (q *MPMCRing[T]) Push(v T) bool {
	for {
		pos := q.enq.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos: // slot free for this ticket
			if q.enq.CompareAndSwap(pos, pos+1) {
				slot.val = v
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos: // queue full
			return false
		default: // another producer advanced; retry
		}
	}
}

// Pop removes the oldest element; ok is false when empty.
//
//yasmin:noalloc
func (q *MPMCRing[T]) Pop() (v T, ok bool) {
	for {
		pos := q.deq.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1: // slot filled for this ticket
			if q.deq.CompareAndSwap(pos, pos+1) {
				v = slot.val
				var zero T
				slot.val = zero
				slot.seq.Store(pos + uint64(len(q.slots)))
				return v, true
			}
		case seq <= pos: // queue empty
			return v, false
		default:
		}
	}
}
