// Package lockfree implements the synchronisation primitives YASMIN's
// lock-free configuration relies on (paper Section 3.5, "Locking", citing
// Mellor-Crummey & Scott, TOCS 1991): test-and-set and test-and-test-and-set
// spinlocks, a ticket lock, an MCS queue lock, and a sense-reversing
// barrier, plus fixed-capacity ring buffers used by the wall-clock runtime's
// ready queues and FIFO channels.
//
// All types are allocation-free after construction: the middleware's
// "no dynamic allocation on the scheduling path" rule (MISRA spirit) holds
// for the Go port too, which the tests assert with testing.AllocsPerRun.
package lockfree

import (
	"runtime"
	"sync/atomic"
)

// Locker is the minimal lock interface shared by all spinlock flavours.
type Locker interface {
	Lock()
	Unlock()
	TryLock() bool
}

// TASLock is a plain test-and-set spinlock. Under contention every probe
// bounces the cache line, which is exactly the behaviour the Mollison &
// Anderson baseline exhibits in the Fig. 2 experiment.
type TASLock struct {
	v atomic.Uint32
}

var _ Locker = (*TASLock)(nil)

// Lock spins until the lock is acquired.
func (l *TASLock) Lock() {
	for !l.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock attempts a single test-and-set.
func (l *TASLock) TryLock() bool { return l.v.CompareAndSwap(0, 1) }

// Unlock releases the lock.
func (l *TASLock) Unlock() { l.v.Store(0) }

// TTASLock is a test-and-test-and-set spinlock: it spins on a read-only
// probe and only attempts the atomic swap when the lock looks free, reducing
// coherence traffic versus TASLock.
type TTASLock struct {
	v atomic.Uint32
}

var _ Locker = (*TTASLock)(nil)

// Lock spins (read-mostly) until acquired.
func (l *TTASLock) Lock() {
	for {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// TryLock attempts one acquisition.
func (l *TTASLock) TryLock() bool {
	return l.v.Load() == 0 && l.v.CompareAndSwap(0, 1)
}

// Unlock releases the lock.
func (l *TTASLock) Unlock() { l.v.Store(0) }

// TicketLock grants the lock in FIFO order: each acquirer takes a ticket and
// waits for the grant counter to reach it. FIFO ordering bounds waiting time,
// which matters for WCET analysis (the paper's predictability argument).
type TicketLock struct {
	next  atomic.Uint64
	owner atomic.Uint64
}

var _ Locker = (*TicketLock)(nil)

// Lock takes a ticket and waits its turn.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	for l.owner.Load() != t {
		runtime.Gosched()
	}
}

// TryLock acquires only if nobody holds or waits for the lock.
func (l *TicketLock) TryLock() bool {
	o := l.owner.Load()
	return l.next.CompareAndSwap(o, o+1)
}

// Unlock passes the lock to the next ticket holder.
func (l *TicketLock) Unlock() { l.owner.Add(1) }

// MCSLock is the Mellor-Crummey & Scott queue lock: each waiter spins on its
// own node, so contention generates no shared-line traffic and handoff is
// FIFO. Nodes are provided by the caller (typically one per thread,
// preallocated), keeping the lock allocation-free.
type MCSLock struct {
	tail atomic.Pointer[MCSNode]
}

// MCSNode is a per-acquirer queue node. A node must not be reused until its
// Unlock has returned.
type MCSNode struct {
	next   atomic.Pointer[MCSNode]
	locked atomic.Bool
}

// Lock enqueues the node and spins on it until granted.
func (l *MCSLock) Lock(n *MCSNode) {
	n.next.Store(nil)
	n.locked.Store(true)
	pred := l.tail.Swap(n)
	if pred == nil {
		return // lock was free
	}
	pred.next.Store(n)
	for n.locked.Load() {
		runtime.Gosched()
	}
}

// TryLock acquires only when the queue is empty.
func (l *MCSLock) TryLock(n *MCSNode) bool {
	n.next.Store(nil)
	n.locked.Store(false)
	return l.tail.CompareAndSwap(nil, n)
}

// Unlock hands the lock to the successor, if any.
func (l *MCSLock) Unlock(n *MCSNode) {
	succ := n.next.Load()
	if succ == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return // no successor
		}
		// A successor is linking in; wait for the pointer to appear.
		for {
			succ = n.next.Load()
			if succ != nil {
				break
			}
			runtime.Gosched()
		}
	}
	succ.locked.Store(false)
}

// SenseBarrier is a sense-reversing centralized barrier for a fixed number
// of parties (Mellor-Crummey & Scott, Algorithm 8).
type SenseBarrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Bool
}

// NewSenseBarrier creates a barrier for n parties.
func NewSenseBarrier(n int) *SenseBarrier {
	if n < 1 {
		panic("lockfree: barrier needs at least one party")
	}
	b := &SenseBarrier{parties: int32(n)}
	b.count.Store(int32(n))
	return b
}

// Await blocks until all parties arrive. localSense must alternate per
// caller; use a *bool initialised to false and pass it on every call.
func (b *SenseBarrier) Await(localSense *bool) {
	*localSense = !*localSense
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Store(*localSense)
		return
	}
	for b.sense.Load() != *localSense {
		runtime.Gosched()
	}
}
