package lockfree

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// exerciseLock hammers a counter behind lock/unlock closures and verifies
// mutual exclusion.
func exerciseLock(t *testing.T, goroutines, iters int, lock, unlock func()) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock()
				counter++
				unlock()
			}
		}()
	}
	wg.Wait()
	if want := goroutines * iters; counter != want {
		t.Errorf("counter = %d, want %d (lost updates => broken mutual exclusion)", counter, want)
	}
}

func TestTASLockMutualExclusion(t *testing.T) {
	var l TASLock
	exerciseLock(t, 8, 2000, l.Lock, l.Unlock)
}

func TestTTASLockMutualExclusion(t *testing.T) {
	var l TTASLock
	exerciseLock(t, 8, 2000, l.Lock, l.Unlock)
}

func TestTicketLockMutualExclusion(t *testing.T) {
	var l TicketLock
	exerciseLock(t, 8, 2000, l.Lock, l.Unlock)
}

func TestMCSLockMutualExclusion(t *testing.T) {
	var l MCSLock
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var node MCSNode
			for i := 0; i < 2000; i++ {
				l.Lock(&node)
				counter++
				l.Unlock(&node)
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Errorf("counter = %d, want 16000", counter)
	}
}

func TestTryLocks(t *testing.T) {
	var tas TASLock
	if !tas.TryLock() {
		t.Fatal("TryLock on free TASLock failed")
	}
	if tas.TryLock() {
		t.Fatal("TryLock on held TASLock succeeded")
	}
	tas.Unlock()

	var ttas TTASLock
	if !ttas.TryLock() || ttas.TryLock() {
		t.Fatal("TTAS TryLock semantics broken")
	}
	ttas.Unlock()

	var tick TicketLock
	if !tick.TryLock() || tick.TryLock() {
		t.Fatal("Ticket TryLock semantics broken")
	}
	tick.Unlock()
	if !tick.TryLock() {
		t.Fatal("Ticket TryLock after unlock failed")
	}
	tick.Unlock()

	var mcs MCSLock
	var n1, n2 MCSNode
	if !mcs.TryLock(&n1) {
		t.Fatal("MCS TryLock on free lock failed")
	}
	if mcs.TryLock(&n2) {
		t.Fatal("MCS TryLock on held lock succeeded")
	}
	mcs.Unlock(&n1)
}

func TestSenseBarrierRounds(t *testing.T) {
	const parties = 6
	const rounds = 50
	b := NewSenseBarrier(parties)
	var phase [parties]atomic.Int32
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sense := false
			for r := 0; r < rounds; r++ {
				phase[id].Store(int32(r))
				b.Await(&sense)
				// After the barrier, everyone must have reached round r.
				for q := 0; q < parties; q++ {
					if got := phase[q].Load(); got < int32(r) {
						t.Errorf("party %d saw party %d at phase %d during round %d", id, q, got, r)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
}

func TestSPSCRingOrderAndCapacity(t *testing.T) {
	r, err := NewSPSCRing[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	if v, ok := r.Peek(); !ok || v != 0 {
		t.Fatalf("peek = %d,%v, want 0,true", v, ok)
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestSPSCRingConcurrent(t *testing.T) {
	r, err := NewSPSCRing[int](64)
	if err != nil {
		t.Fatal(err)
	}
	const total = 20000
	done := make(chan bool)
	go func() {
		expect := 0
		for expect < total {
			if v, ok := r.Pop(); ok {
				if v != expect {
					t.Errorf("got %d, want %d (reordering!)", v, expect)
					done <- false
					return
				}
				expect++
			} else {
				runtime.Gosched()
			}
		}
		done <- true
	}()
	for i := 0; i < total; {
		if r.Push(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if !<-done {
		t.Fatal("consumer failed")
	}
}

func TestMPMCRingConcurrent(t *testing.T) {
	q, err := NewMPMCRing[int](128)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 5000
	var wg sync.WaitGroup
	seen := make([]int32, producers*perProducer)
	var mu sync.Mutex
	var popped int
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !q.Push(base + i) {
					runtime.Gosched()
				}
			}
		}(p * perProducer)
	}
	var cg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if ok {
					seen[v]++
					mu.Lock()
					popped++
					done := popped == producers*perProducer
					mu.Unlock()
					if done {
						close(stop)
						return
					}
					continue
				}
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times, want exactly once", i, n)
		}
	}
}

func TestMPMCRingFullEmpty(t *testing.T) {
	q, err := NewMPMCRing[string](2)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("push into empty queue failed")
	}
	if q.Push("c") {
		t.Fatal("push into full queue succeeded")
	}
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != "b" {
		t.Fatalf("pop = %q,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestRingCapacityValidation(t *testing.T) {
	if _, err := NewSPSCRing[int](0); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := NewMPMCRing[int](-1); err == nil {
		t.Error("want error for negative capacity")
	}
	r, err := NewSPSCRing[int](5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Errorf("cap = %d, want rounded-up 8", r.Cap())
	}
}

func TestSPSCRingPropertyFIFO(t *testing.T) {
	// Property: any sequence of pushes followed by pops returns the pushed
	// prefix in order.
	f := func(vals []int16) bool {
		r, err := NewSPSCRing[int16](64)
		if err != nil {
			return false
		}
		var accepted []int16
		for _, v := range vals {
			if r.Push(v) {
				accepted = append(accepted, v)
			}
		}
		for _, want := range accepted {
			got, ok := r.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPushPopNoAllocs(t *testing.T) {
	r, err := NewSPSCRing[int](8)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push(1)
		r.Pop()
	})
	if allocs != 0 {
		t.Errorf("SPSC push/pop allocates %.1f objects/op, want 0", allocs)
	}
	q, err := NewMPMCRing[int](8)
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		q.Push(1)
		q.Pop()
	})
	if allocs != 0 {
		t.Errorf("MPMC push/pop allocates %.1f objects/op, want 0", allocs)
	}
}
