package lockfree

import (
	"runtime"
	"sync"
	"testing"
)

func TestMPSCRingOrderAndCapacity(t *testing.T) {
	q, err := NewMPSCRing[int](5) // rounds to 8
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", q.Cap())
	}
	for i := 0; i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Error("push beyond capacity succeeded")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop from empty succeeded")
	}
	if _, err := NewMPSCRing[int](0); err == nil {
		t.Error("want error for capacity 0")
	}
}

// TestMPSCRingStress hammers the ring with many producers and ONE consumer
// under the race detector: every pushed value must come out exactly once,
// and each producer's values must come out in its program order (the fan-in
// guarantee topics rely on for per-publisher FIFO delivery).
func TestMPSCRingStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	q, err := NewMPSCRing[[2]int](64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				for !q.Push([2]int{p, i}) {
					runtime.Gosched() // full: let the consumer make room
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	total := 0
	take := func(v [2]int) {
		p, i := v[0], v[1]
		if i != lastSeen[p]+1 {
			t.Fatalf("producer %d: got %d after %d (per-producer order broken)", p, i, lastSeen[p])
		}
		lastSeen[p] = i
		total++
	}
	for total < producers*perProd {
		if v, ok := q.Pop(); ok {
			take(v)
			continue
		}
		select {
		case <-done:
			// Producers finished: whatever remains is fully published.
			for {
				v, ok := q.Pop()
				if !ok {
					break
				}
				take(v)
			}
			if total < producers*perProd {
				t.Fatalf("ring drained after %d/%d values (loss)", total, producers*perProd)
			}
		default:
			runtime.Gosched()
		}
	}
	for p, last := range lastSeen {
		if last != perProd-1 {
			t.Errorf("producer %d: last value %d, want %d", p, last, perProd-1)
		}
	}
}

// TestMPSCRingSingleConsumerInterleaved interleaves pushes and pops so the
// ring wraps many times across the sequence space.
func TestMPSCRingSingleConsumerInterleaved(t *testing.T) {
	q, err := NewMPSCRing[int](4)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for round := 0; round < 1000; round++ {
		n := round%4 + 1
		for i := 0; i < n; i++ {
			if !q.Push(round*10 + i) {
				break
			}
		}
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			_ = v
			next++
		}
	}
	if q.Len() != 0 {
		t.Errorf("ring not drained: %d left", q.Len())
	}
}
