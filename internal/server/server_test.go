package server

import (
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// rig builds an App with a server plus one periodic hard task.
func rig(t *testing.T, kind Kind, budget, period time.Duration) (*sim.Engine, *rt.SimEnv, *core.App, *Server) {
	t.Helper()
	eng := sim.NewEngine(4)
	env, err := rt.NewSimEnv(eng, platform.Generic(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.New(core.Config{Workers: 2, Priority: core.PriorityEDF, Preemption: true}, env)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(app, "aperiodic-server", kind, budget, period, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A hard periodic task sharing the platform.
	hard, err := app.TaskDecl(core.TData{Name: "hard", Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(hard, func(x *core.ExecCtx, _ any) error {
		return x.Compute(ms(2))
	}, nil, core.VSelect{}); err != nil {
		t.Fatal(err)
	}
	return eng, env, app, srv
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	env, err := rt.NewSimEnv(eng, platform.Generic(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.New(core.Config{Workers: 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(app, "s", Polling, 0, ms(10), 4); err == nil {
		t.Error("want error for zero budget")
	}
	if _, err := New(app, "s", Polling, ms(20), ms(10), 4); err == nil {
		t.Error("want error for budget > period")
	}
	if _, err := New(app, "s", Polling, ms(2), ms(10), 0); err == nil {
		t.Error("want error for zero queue")
	}
	if _, err := New(app, "s", Kind(0), ms(2), ms(10), 4); err == nil {
		t.Error("want error for unknown kind")
	}
	srv, err := New(app, "s", Polling, ms(2), ms(10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(0, Request{Cost: ms(1)}); err == nil {
		t.Error("want error for nil fn")
	}
	noop := func(x *core.ExecCtx) error { return nil }
	if err := srv.Submit(0, Request{Fn: noop}); err == nil {
		t.Error("want error for zero cost")
	}
	if err := srv.Submit(0, Request{Fn: noop, Cost: ms(5)}); err == nil {
		t.Error("want error for cost beyond budget")
	}
}

func TestPollingServesRequests(t *testing.T) {
	eng, env, app, srv := rig(t, Polling, ms(3), ms(10))
	served := 0
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		for i := 0; i < 6; i++ {
			err := srv.Submit(c.Now(), Request{
				Name: "req",
				Cost: ms(1),
				Fn: func(x *core.ExecCtx) error {
					served++
					return x.Compute(ms(1))
				},
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			c.Sleep(ms(5))
		}
		c.Sleep(ms(50))
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if served != 6 || srv.Served() != 6 {
		t.Errorf("served = %d/%d, want 6", served, srv.Served())
	}
	if srv.Pending() != 0 {
		t.Errorf("pending = %d, want 0", srv.Pending())
	}
	// Polling: requests wait at most ~period + execution.
	_, max, _ := srv.Response.Summary()
	if max > ms(15) {
		t.Errorf("max response %v, want <= ~1 period", max)
	}
	// The hard task is unaffected by the aperiodic load.
	if st := app.Recorder().Task("hard"); st == nil || st.Misses != 0 {
		t.Errorf("hard task disturbed: %+v", st)
	}
}

func TestBudgetBoundsBurst(t *testing.T) {
	// A burst of 9ms of work through a 3ms/10ms polling server takes at
	// least 3 activations: bandwidth is bounded.
	eng, env, app, srv := rig(t, Polling, ms(3), ms(10))
	var finish time.Duration
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		for i := 0; i < 9; i++ {
			if err := srv.Submit(c.Now(), Request{
				Cost: ms(1),
				Fn: func(x *core.ExecCtx) error {
					if err := x.Compute(ms(1)); err != nil {
						return err
					}
					finish = x.Now()
					return nil
				},
			}); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
		c.Sleep(ms(80))
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if srv.Served() != 9 {
		t.Fatalf("served = %d, want 9", srv.Served())
	}
	// 9ms of work at 3ms per 10ms period: last completion in the 3rd
	// activation or later (>= ~20ms).
	if finish < ms(20) {
		t.Errorf("burst finished at %v; budget not enforced", finish)
	}
}

func TestDeferrableBeatsPollingOnLatency(t *testing.T) {
	run := func(kind Kind) time.Duration {
		eng, env, app, srv := rig(t, kind, ms(3), ms(10))
		env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
			if err := app.Start(c); err != nil {
				return
			}
			// Submit just after the server activation started: polling
			// waits for the next period; deferrable picks it up within
			// its remaining budget.
			c.Sleep(ms(10) + 200*time.Microsecond)
			_ = srv.Submit(c.Now(), Request{
				Cost: ms(1),
				Fn:   func(x *core.ExecCtx) error { return x.Compute(ms(1)) },
			})
			c.Sleep(ms(40))
			app.Stop(c)
			app.Cleanup(c)
		})
		if err := eng.Run(sim.Time(time.Second)); err != nil {
			t.Fatal(err)
		}
		if srv.Served() != 1 {
			t.Fatalf("%v served %d, want 1", kind, srv.Served())
		}
		_, _, avg := srv.Response.Summary()
		return avg
	}
	polling := run(Polling)
	deferrable := run(Deferrable)
	if deferrable >= polling {
		t.Errorf("deferrable response %v not below polling %v", deferrable, polling)
	}
}

func TestQueueOverflowCounted(t *testing.T) {
	eng := sim.NewEngine(9)
	env, err := rt.NewSimEnv(eng, platform.Generic(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.New(core.Config{Workers: 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(app, "s", Polling, ms(1), ms(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	noop := func(x *core.ExecCtx) error { return nil }
	for i := 0; i < 3; i++ {
		err = srv.Submit(0, Request{Cost: ms(1), Fn: noop})
	}
	if err == nil {
		t.Error("third submit into a 2-slot queue must fail")
	}
	if srv.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", srv.Dropped())
	}
	if srv.Pending() != 2 {
		t.Errorf("pending = %d, want 2", srv.Pending())
	}
	if srv.TID() < 0 {
		t.Error("server task not declared")
	}
	if Polling.String() != "polling" || Deferrable.String() != "deferrable" {
		t.Error("kind strings wrong")
	}
}

// TestDeferrableIdleDoesNotStarveLowerPriority: with ONE worker and the
// deferrable server as the most urgent task (RM, shortest period), its idle
// window-wait must release the CPU — a lower-priority background task keeps
// running (the old spin-poll implementation burned the budget; a naive
// sleep would pin the worker for the whole period).
func TestDeferrableIdleDoesNotStarveLowerPriority(t *testing.T) {
	eng := sim.NewEngine(7)
	env, err := rt.NewSimEnv(eng, platform.Generic(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := core.New(core.Config{
		Workers: 1, Priority: core.PriorityRM, Preemption: true,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(app, "srv", Deferrable, ms(3), ms(10), 16)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := app.TaskDecl(core.TData{Name: "background", Period: ms(50)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(bg, func(x *core.ExecCtx, _ any) error {
		return x.Compute(ms(5))
	}, nil, core.VSelect{}); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(ms(200))
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
	st := app.Recorder().Task("background")
	if st == nil || st.Jobs < 4 {
		t.Fatalf("background task starved: %+v", st)
	}
	if st.Misses != 0 {
		t.Errorf("background missed %d deadlines under an idle server", st.Misses)
	}
	_ = srv
}
