// Package server implements recurring servers for aperiodic workload — the
// paper's announced future-work direction ("improve the management of
// real-time tasks with arbitrary activation patterns by using recurring
// servers", Section 7, citing Ghazalie & Baker's aperiodic servers in a
// deadline scheduling environment).
//
// A Server is a periodic YASMIN task with an execution budget: aperiodic
// requests are queued on the server and executed inside the budget at each
// server activation, so arbitrary arrival patterns consume a bounded,
// analysable share of the processor — the rest of the task set keeps its
// guarantees regardless of the aperiodic load.
//
// Two classic flavours are provided: the polling server (unused budget is
// lost at the end of the activation) and the deferrable server (a
// bandwidth-preserving variant: the activation re-polls its queue until the
// budget is exhausted, serving requests that arrive mid-activation).
package server

import (
	"fmt"
	"sync"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Kind selects the server algorithm.
type Kind int

// Server kinds.
const (
	// Polling serves only requests queued at activation time; remaining
	// budget is dropped.
	Polling Kind = iota + 1
	// Deferrable keeps polling for late arrivals until the budget is
	// exhausted, improving aperiodic response times at the same bandwidth.
	Deferrable
)

func (k Kind) String() string {
	switch k {
	case Polling:
		return "polling"
	case Deferrable:
		return "deferrable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one unit of aperiodic work. Cost is its execution-time budget
// charge; Fn runs on the server's fiber and should consume at most Cost via
// x.Compute.
type Request struct {
	Name string
	Cost time.Duration
	Fn   func(x *core.ExecCtx) error

	submitted time.Duration
}

// Server is a recurring server bound to one App.
type Server struct {
	app    *core.App
	tid    core.TID
	kind   Kind
	budget time.Duration
	period time.Duration

	mu      sync.Mutex
	queue   []Request
	dropped int64
	served  int64

	// Response records submit -> completion times of served requests.
	Response *trace.Stat
}

// New declares a recurring server on the app (before Start). budget is the
// execution time available per period; queueCap bounds pending requests.
func New(app *core.App, name string, kind Kind, budget, period time.Duration, queueCap int) (*Server, error) {
	if budget <= 0 || period <= 0 || budget > period {
		return nil, fmt.Errorf("server: need 0 < budget <= period, got %v/%v", budget, period)
	}
	if queueCap <= 0 {
		return nil, fmt.Errorf("server: need a positive queue capacity")
	}
	if kind != Polling && kind != Deferrable {
		return nil, fmt.Errorf("server: unknown kind %v", kind)
	}
	s := &Server{
		app:      app,
		kind:     kind,
		budget:   budget,
		period:   period,
		queue:    make([]Request, 0, queueCap),
		Response: trace.NewStat(name+"/response", false),
	}
	tid, err := app.TaskDecl(core.TData{Name: name, Period: period, Deadline: period})
	if err != nil {
		return nil, err
	}
	s.tid = tid
	if _, err := app.VersionDecl(tid, s.run, nil, core.VSelect{WCET: budget}); err != nil {
		return nil, err
	}
	return s, nil
}

// TID returns the underlying periodic task.
func (s *Server) TID() core.TID { return s.tid }

// Submit queues an aperiodic request. It fails when the queue is full (the
// overload is counted).
func (s *Server) Submit(now time.Duration, req Request) error {
	if req.Fn == nil {
		return fmt.Errorf("server: request needs a function")
	}
	if req.Cost <= 0 {
		return fmt.Errorf("server: request needs a positive cost")
	}
	if req.Cost > s.budget {
		return fmt.Errorf("server: request cost %v exceeds the server budget %v", req.Cost, s.budget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == cap(s.queue) {
		s.dropped++
		return fmt.Errorf("server: queue full (%d)", cap(s.queue))
	}
	req.submitted = now
	s.queue = append(s.queue, req)
	return nil
}

// Pending returns the number of queued requests.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Served returns the number of completed requests.
func (s *Server) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Dropped returns the number of rejected submissions.
func (s *Server) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// pop takes the oldest affordable request, or returns false.
func (s *Server) pop(remaining time.Duration) (Request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.queue {
		if s.queue[i].Cost <= remaining {
			req := s.queue[i]
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return req, true
		}
	}
	return Request{}, false
}

// run is the server's periodic body: drain the queue within the budget.
func (s *Server) run(x *core.ExecCtx, _ any) error {
	remaining := s.budget
	for {
		req, ok := s.pop(remaining)
		if !ok {
			if s.kind == Polling {
				return nil // polling: unused budget is lost
			}
			// Deferrable: requests may arrive while we still hold budget.
			// Poll again after a short budget slice; give up when the
			// slice would exceed the remaining budget.
			const slice = 100 * time.Microsecond
			if remaining < slice {
				return nil
			}
			if err := x.Compute(slice); err != nil {
				return err
			}
			remaining -= slice
			continue
		}
		if err := req.Fn(x); err != nil {
			return err
		}
		remaining -= req.Cost
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		s.Response.Add(x.Now() - req.submitted)
		if remaining <= 0 {
			return nil
		}
	}
}
