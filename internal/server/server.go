// Package server implements recurring servers for aperiodic workload — the
// paper's announced future-work direction ("improve the management of
// real-time tasks with arbitrary activation patterns by using recurring
// servers", Section 7, citing Ghazalie & Baker's aperiodic servers in a
// deadline scheduling environment).
//
// A Server is a periodic YASMIN task with an execution budget: aperiodic
// requests are queued on the server and executed inside the budget at each
// server activation, so arbitrary arrival patterns consume a bounded,
// analysable share of the processor — the rest of the task set keeps its
// guarantees regardless of the aperiodic load.
//
// Two classic flavours are provided: the polling server (an empty queue
// ends the activation and the unused budget is lost) and the deferrable
// server (a bandwidth-preserving variant: the activation stays open until
// the end of its period, serving requests that arrive mid-window from the
// budget it preserved while idle — idling sleeps, it never burns budget).
package server

import (
	"fmt"
	"sync"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Kind selects the server algorithm.
type Kind int

// Server kinds.
const (
	// Polling serves only requests queued at activation time; remaining
	// budget is dropped.
	Polling Kind = iota + 1
	// Deferrable keeps polling for late arrivals until the budget is
	// exhausted, improving aperiodic response times at the same bandwidth.
	Deferrable
)

func (k Kind) String() string {
	switch k {
	case Polling:
		return "polling"
	case Deferrable:
		return "deferrable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one unit of aperiodic work. Cost is its execution-time budget
// charge; Fn runs on the server's fiber and should consume at most Cost via
// x.Compute.
type Request struct {
	Name string
	Cost time.Duration
	Fn   func(x *core.ExecCtx) error

	submitted time.Duration
}

// Server is a recurring server bound to one App.
type Server struct {
	app    *core.App
	tid    core.TID
	kind   Kind
	budget time.Duration
	period time.Duration

	mu sync.Mutex
	// queue is a fixed-capacity ring: qhead is the oldest entry, qlen the
	// count. The common pop (oldest request affordable) is O(1); only a
	// head request too expensive for the remaining budget costs a shift —
	// no reallocation or slice splice either way.
	queue   []Request
	qhead   int
	qlen    int
	dropped int64
	served  int64

	// Response records submit -> completion times of served requests.
	Response *trace.Stat
}

// New declares a recurring server on the app (before Start). budget is the
// execution time available per period; queueCap bounds pending requests.
func New(app *core.App, name string, kind Kind, budget, period time.Duration, queueCap int) (*Server, error) {
	if budget <= 0 || period <= 0 || budget > period {
		return nil, fmt.Errorf("server: need 0 < budget <= period, got %v/%v", budget, period)
	}
	if queueCap <= 0 {
		return nil, fmt.Errorf("server: need a positive queue capacity")
	}
	if kind != Polling && kind != Deferrable {
		return nil, fmt.Errorf("server: unknown kind %v", kind)
	}
	s := &Server{
		app:      app,
		kind:     kind,
		budget:   budget,
		period:   period,
		queue:    make([]Request, queueCap),
		Response: trace.NewStat(name+"/response", false),
	}
	tid, err := app.TaskDecl(core.TData{Name: name, Period: period, Deadline: period})
	if err != nil {
		return nil, err
	}
	s.tid = tid
	if _, err := app.VersionDecl(tid, s.run, nil, core.VSelect{WCET: budget}); err != nil {
		return nil, err
	}
	return s, nil
}

// TID returns the underlying periodic task.
func (s *Server) TID() core.TID { return s.tid }

// Submit queues an aperiodic request. It fails when the queue is full (the
// overload is counted).
func (s *Server) Submit(now time.Duration, req Request) error {
	if req.Fn == nil {
		return fmt.Errorf("server: request needs a function")
	}
	if req.Cost <= 0 {
		return fmt.Errorf("server: request needs a positive cost")
	}
	if req.Cost > s.budget {
		return fmt.Errorf("server: request cost %v exceeds the server budget %v", req.Cost, s.budget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.qlen == len(s.queue) {
		s.dropped++
		return fmt.Errorf("server: queue full (%d)", len(s.queue))
	}
	req.submitted = now
	s.queue[(s.qhead+s.qlen)%len(s.queue)] = req
	s.qlen++
	return nil
}

// Pending returns the number of queued requests.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qlen
}

// Served returns the number of completed requests.
func (s *Server) Served() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Dropped returns the number of rejected submissions.
func (s *Server) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// pop takes the oldest affordable request, or returns false. The oldest
// request is almost always affordable (ring head, O(1)); skipping over an
// unaffordable head shifts the scanned prefix by one slot, still without
// allocating.
func (s *Server) pop(remaining time.Duration) (Request, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.queue)
	for i := 0; i < s.qlen; i++ {
		idx := (s.qhead + i) % n
		if s.queue[idx].Cost > remaining {
			continue
		}
		req := s.queue[idx]
		// Close the gap towards the head (the scanned prefix is shorter
		// than the unscanned tail in the common case).
		for k := i; k > 0; k-- {
			to := (s.qhead + k) % n
			from := (s.qhead + k - 1) % n
			s.queue[to] = s.queue[from]
		}
		s.queue[s.qhead] = Request{}
		s.qhead = (s.qhead + 1) % n
		s.qlen--
		return req, true
	}
	return Request{}, false
}

// run is the server's periodic body: serve queued requests within the
// budget. Idle time never consumes budget OR CPU: a deferrable server
// WAITS for late arrivals until its activation window closes with
// ExecCtx.Sleep, which releases the worker for the duration — other tasks
// of any priority run meanwhile — instead of burning budget in compute
// slices as a spin-poll would.
func (s *Server) run(x *core.ExecCtx, _ any) error {
	remaining := s.budget
	windowEnd := x.Release() + s.period
	const poll = 100 * time.Microsecond
	for {
		req, ok := s.pop(remaining)
		if !ok {
			if s.kind == Polling {
				return nil // polling: an empty queue ends the activation
			}
			// Deferrable: the budget is preserved while idle; re-check the
			// queue each poll interval until the window closes.
			if x.Now()+poll >= windowEnd {
				return nil
			}
			if err := x.Sleep(poll); err != nil {
				return err
			}
			continue
		}
		if err := req.Fn(x); err != nil {
			return err
		}
		remaining -= req.Cost
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		s.Response.Add(x.Now() - req.submitted)
		if remaining <= 0 {
			return nil
		}
	}
}
