package offline

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSimplePeriodicSynthesis(t *testing.T) {
	specs := []TaskSpec{
		{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(2), Accel: NoAccelerator}}},
		{Name: "b", Period: ms(20), Versions: []VersionSpec{{WCET: ms(5), Accel: NoAccelerator}}},
	}
	s, err := Synthesize(specs, 1, 0, MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hyperperiod != ms(20) {
		t.Errorf("H = %v, want 20ms", s.Hyperperiod)
	}
	// a runs twice, b once per hyperperiod.
	if got := len(s.Placements); got != 3 {
		t.Fatalf("placements = %d, want 3", got)
	}
	for _, p := range s.Placements {
		if p.Finish > p.AbsDL {
			t.Errorf("task %d inst %d finishes %v after deadline %v", p.Task, p.Job, p.Finish, p.AbsDL)
		}
	}
	if s.Table.Cycle != ms(20) || len(s.Table.PerWorker) != 1 {
		t.Errorf("table = %+v", s.Table)
	}
}

func TestPrecedenceRespected(t *testing.T) {
	specs := []TaskSpec{
		{Name: "src", Period: ms(20), Versions: []VersionSpec{{WCET: ms(3), Accel: NoAccelerator}}},
		{Name: "mid", Preds: []int{0}, Versions: []VersionSpec{{WCET: ms(3), Accel: NoAccelerator}}},
		{Name: "dst", Preds: []int{1}, Versions: []VersionSpec{{WCET: ms(3), Accel: NoAccelerator}}},
	}
	s, err := Synthesize(specs, 2, 0, MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	start := map[int]time.Duration{}
	fin := map[int]time.Duration{}
	for _, p := range s.Placements {
		start[p.Task] = p.Start
		fin[p.Task] = p.Finish
	}
	if start[1] < fin[0] || start[2] < fin[1] {
		t.Errorf("precedence violated: starts %v, finishes %v", start, fin)
	}
}

func TestAcceleratorExclusivity(t *testing.T) {
	// Two tasks with only GPU versions: must serialise on the accelerator.
	specs := []TaskSpec{
		{Name: "a", Period: ms(20), Versions: []VersionSpec{{WCET: ms(5), Accel: 0}}},
		{Name: "b", Period: ms(20), Versions: []VersionSpec{{WCET: ms(5), Accel: 0}}},
	}
	s, err := Synthesize(specs, 2, 1, MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	var iv [][2]time.Duration
	for _, p := range s.Placements {
		iv = append(iv, [2]time.Duration{p.Start, p.Finish})
	}
	if len(iv) != 2 {
		t.Fatal("want 2 placements")
	}
	overlap := iv[0][0] < iv[1][1] && iv[1][0] < iv[0][1]
	if overlap {
		t.Errorf("accelerator intervals overlap: %v", iv)
	}
}

func TestVersionPreselectionPrefersFasterUnderMakespan(t *testing.T) {
	specs := []TaskSpec{
		{Name: "a", Period: ms(20), Versions: []VersionSpec{
			{WCET: ms(8), Accel: NoAccelerator, Energy: 1},
			{WCET: ms(3), Accel: 0, Energy: 10},
		}},
	}
	s, err := Synthesize(specs, 1, 1, MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Version != 1 {
		t.Errorf("picked version %d, want 1 (faster GPU)", s.Placements[0].Version)
	}
}

func TestVersionPreselectionPrefersCheaperUnderEnergy(t *testing.T) {
	specs := []TaskSpec{
		{Name: "a", Period: ms(20), Versions: []VersionSpec{
			{WCET: ms(8), Accel: NoAccelerator, Energy: 1},
			{WCET: ms(3), Accel: 0, Energy: 10},
		}},
	}
	s, err := Synthesize(specs, 1, 1, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[0].Version != 0 {
		t.Errorf("picked version %d, want 0 (cheaper CPU, still meets deadline)", s.Placements[0].Version)
	}
	if s.Energy != 1 {
		t.Errorf("energy = %g, want 1", s.Energy)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	specs := []TaskSpec{
		{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(8), Accel: NoAccelerator}}},
		{Name: "b", Period: ms(10), Versions: []VersionSpec{{WCET: ms(8), Accel: NoAccelerator}}},
	}
	if _, err := Synthesize(specs, 1, 0, MinMakespan); err == nil {
		t.Error("want infeasibility error: 16ms of work per 10ms on one worker")
	}
}

func TestStructuralValidation(t *testing.T) {
	cases := []struct {
		name  string
		specs []TaskSpec
	}{
		{"no versions", []TaskSpec{{Name: "a", Period: ms(10)}}},
		{"zero wcet", []TaskSpec{{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: 0, Accel: NoAccelerator}}}}},
		{"unknown accel", []TaskSpec{{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(1), Accel: 3}}}}},
		{"unknown pred", []TaskSpec{{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}, Preds: []int{5}}}},
		{"no period no preds", []TaskSpec{{Name: "a", Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}}}},
		{"period on non-root", []TaskSpec{
			{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}},
			{Name: "b", Period: ms(10), Preds: []int{0}, Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}},
		}},
		{"cycle", []TaskSpec{
			{Name: "a", Preds: []int{1}, Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}},
			{Name: "b", Preds: []int{0}, Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Synthesize(tc.specs, 1, 1, MinMakespan); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := Synthesize(nil, 1, 0, MinMakespan); err == nil {
		t.Error("want error for empty spec")
	}
	if _, err := Synthesize([]TaskSpec{{Name: "a", Period: ms(1), Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}}}, 0, 0, MinMakespan); err == nil {
		t.Error("want error for zero workers")
	}
}

func TestTableEntriesSortedAndWithinCycle(t *testing.T) {
	specs := []TaskSpec{
		{Name: "a", Period: ms(10), Versions: []VersionSpec{{WCET: ms(1), Accel: NoAccelerator}}},
		{Name: "b", Period: ms(20), Versions: []VersionSpec{{WCET: ms(2), Accel: NoAccelerator}}},
		{Name: "c", Period: ms(40), Versions: []VersionSpec{{WCET: ms(4), Accel: NoAccelerator}}},
	}
	s, err := Synthesize(specs, 2, 0, MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	for w, entries := range s.Table.PerWorker {
		last := time.Duration(-1)
		for _, e := range entries {
			if e.Offset < last {
				t.Errorf("worker %d: entries unsorted", w)
			}
			if e.Offset >= s.Table.Cycle {
				t.Errorf("worker %d: offset %v beyond cycle %v", w, e.Offset, s.Table.Cycle)
			}
			last = e.Offset
		}
	}
}
