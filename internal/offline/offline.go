// Package offline computes static time-triggered schedules for YASMIN's
// off-line scheduling mode (paper Section 3.4): given the task set's timing
// properties it builds, ahead of execution, a per-worker dispatch table over
// one hyperperiod, with versions pre-selected off-line (so only the
// referenced versions need to ship) and heterogeneous resources resolved at
// synthesis time (the Section 3.4 "Limitation" turned guarantee: a task can
// target an accelerator without asking the on-line dispatcher).
//
// The synthesiser is an earliest-deadline list scheduler with HEFT-style
// earliest-finish-time version/worker selection under precedence and
// accelerator-exclusivity constraints.
package offline

import (
	"fmt"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// NoAccelerator marks a CPU-only version.
const NoAccelerator = -1

// VersionSpec describes one implementation for synthesis.
type VersionSpec struct {
	WCET   time.Duration
	Accel  int // accelerator index, NoAccelerator for CPU-only
	Energy float64
}

// TaskSpec describes one task for synthesis. Tasks are referenced by their
// index in the spec slice, which must match the declaration order of the
// corresponding core.App (TID i == spec i).
type TaskSpec struct {
	Name     string
	Period   time.Duration // roots only; 0 for data-activated nodes
	Deadline time.Duration // 0: implicit (period, or inherited from the root)
	Versions []VersionSpec
	Preds    []int // indices of predecessor specs
}

// Objective selects the version-choice criterion.
type Objective int

// Objectives.
const (
	// MinMakespan picks the version/worker pair finishing earliest.
	MinMakespan Objective = iota + 1
	// MinEnergy picks the cheapest version that still meets the deadline,
	// breaking ties by finish time.
	MinEnergy
)

// Placement reports where one job instance landed (for inspection/tests).
type Placement struct {
	Task    int
	Job     int // instance within the hyperperiod
	Worker  int
	Version int
	Start   time.Duration
	Finish  time.Duration
	AbsDL   time.Duration
}

// Schedule is the synthesis result.
type Schedule struct {
	Table       *core.OfflineTable
	Hyperperiod time.Duration
	Placements  []Placement
	Makespan    time.Duration
	Energy      float64
}

// Synthesize builds a dispatch table for the given specs on `workers`
// virtual CPUs and `accels` single-capacity accelerators. It returns an
// error when the set is structurally invalid or no feasible table exists
// under the heuristic.
func Synthesize(specs []TaskSpec, workers, accels int, obj Objective) (*Schedule, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("offline: need at least one worker")
	}
	if obj == 0 {
		obj = MinMakespan
	}
	n := len(specs)
	if n == 0 {
		return nil, fmt.Errorf("offline: empty spec")
	}
	for i, s := range specs {
		if len(s.Versions) == 0 {
			return nil, fmt.Errorf("offline: task %d (%s) has no versions", i, s.Name)
		}
		for _, v := range s.Versions {
			if v.WCET <= 0 {
				return nil, fmt.Errorf("offline: task %d (%s): non-positive WCET", i, s.Name)
			}
			if v.Accel != NoAccelerator && (v.Accel < 0 || v.Accel >= accels) {
				return nil, fmt.Errorf("offline: task %d (%s): unknown accelerator %d", i, s.Name, v.Accel)
			}
		}
		for _, p := range s.Preds {
			if p < 0 || p >= n {
				return nil, fmt.Errorf("offline: task %d (%s): unknown predecessor %d", i, s.Name, p)
			}
		}
		if s.Period == 0 && len(s.Preds) == 0 {
			return nil, fmt.Errorf("offline: task %d (%s) has neither period nor predecessors", i, s.Name)
		}
		if s.Period > 0 && len(s.Preds) > 0 {
			return nil, fmt.Errorf("offline: task %d (%s): only root nodes carry periods", i, s.Name)
		}
	}
	root, depth, err := rootOf(specs)
	if err != nil {
		return nil, err
	}
	// Hyperperiod over root periods.
	H := time.Duration(1)
	for i := range specs {
		if specs[i].Period > 0 {
			H = taskset.LCM(H, specs[i].Period)
		}
	}
	// Enumerate job instances.
	type jobInst struct {
		task    int
		inst    int
		release time.Duration
		absDL   time.Duration
		depth   int
	}
	var jobs []jobInst
	for i := range specs {
		r := root[i]
		period := specs[r].Period
		dl := specs[i].Deadline
		if dl == 0 {
			dl = specs[r].Deadline
			if dl == 0 {
				dl = period
			}
		}
		count := int(H / period)
		for k := 0; k < count; k++ {
			rel := time.Duration(k) * period
			jobs = append(jobs, jobInst{
				task: i, inst: k, release: rel, absDL: rel + dl, depth: depth[i],
			})
		}
	}
	// EDF order, precedence-consistent via depth, deterministic ties.
	sort.SliceStable(jobs, func(a, b int) bool {
		ja, jb := &jobs[a], &jobs[b]
		if ja.release != jb.release {
			return ja.release < jb.release
		}
		if ja.depth != jb.depth {
			return ja.depth < jb.depth
		}
		if ja.absDL != jb.absDL {
			return ja.absDL < jb.absDL
		}
		return ja.task < jb.task
	})
	// Timeline state.
	workerFree := make([]time.Duration, workers)
	accelFree := make([]time.Duration, accels)
	// finish[task][inst] for precedence.
	finish := make([]map[int]time.Duration, n)
	for i := range finish {
		finish[i] = make(map[int]time.Duration)
	}
	sched := &Schedule{Hyperperiod: H}
	entries := make([][]core.TableEntry, workers)

	for _, jb := range jobs {
		s := &specs[jb.task]
		est := jb.release
		for _, p := range s.Preds {
			pf, ok := finish[p][jb.inst]
			if !ok {
				return nil, fmt.Errorf("offline: internal: %s instance %d scheduled before predecessor %s",
					s.Name, jb.inst, specs[p].Name)
			}
			if pf > est {
				est = pf
			}
		}
		type cand struct {
			worker, version int
			start, fin      time.Duration
			energy          float64
		}
		var best *cand
		better := func(a, b *cand) bool {
			if b == nil {
				return true
			}
			switch obj {
			case MinEnergy:
				aMeets := a.fin <= jb.absDL
				bMeets := b.fin <= jb.absDL
				if aMeets != bMeets {
					return aMeets
				}
				if aMeets && a.energy != b.energy {
					return a.energy < b.energy
				}
				return a.fin < b.fin
			default:
				if a.fin != b.fin {
					return a.fin < b.fin
				}
				return a.energy < b.energy
			}
		}
		for vi, v := range s.Versions {
			for w := 0; w < workers; w++ {
				start := est
				if workerFree[w] > start {
					start = workerFree[w]
				}
				if v.Accel != NoAccelerator && accelFree[v.Accel] > start {
					start = accelFree[v.Accel]
				}
				c := &cand{worker: w, version: vi, start: start, fin: start + v.WCET, energy: v.Energy}
				if better(c, best) {
					best = c
				}
			}
		}
		if best == nil || best.fin > jb.absDL {
			fin := time.Duration(0)
			if best != nil {
				fin = best.fin
			}
			return nil, fmt.Errorf("offline: infeasible: %s instance %d misses deadline %v (best finish %v)",
				s.Name, jb.inst, jb.absDL, fin)
		}
		workerFree[best.worker] = best.fin
		if acc := s.Versions[best.version].Accel; acc != NoAccelerator {
			accelFree[acc] = best.fin
		}
		finish[jb.task][jb.inst] = best.fin
		entries[best.worker] = append(entries[best.worker], core.TableEntry{
			Offset:  best.start,
			Task:    core.TID(jb.task),
			Version: core.VID(best.version),
		})
		sched.Placements = append(sched.Placements, Placement{
			Task: jb.task, Job: jb.inst, Worker: best.worker, Version: best.version,
			Start: best.start, Finish: best.fin, AbsDL: jb.absDL,
		})
		if best.fin > sched.Makespan {
			sched.Makespan = best.fin
		}
		sched.Energy += best.energy
	}
	for w := range entries {
		sort.SliceStable(entries[w], func(a, b int) bool {
			return entries[w][a].Offset < entries[w][b].Offset
		})
	}
	sched.Table = &core.OfflineTable{Cycle: H, PerWorker: entries}
	return sched, nil
}

// rootOf finds, for every spec, its unique root and topological depth;
// errors on cycles or multi-root nodes with conflicting roots.
func rootOf(specs []TaskSpec) (root []int, depth []int, err error) {
	n := len(specs)
	root = make([]int, n)
	depth = make([]int, n)
	state := make([]int, n) // 0 white, 1 grey, 2 black
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("offline: dependency cycle through %s", specs[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		if len(specs[i].Preds) == 0 {
			root[i] = i
			depth[i] = 0
		} else {
			r := -1
			d := 0
			for _, p := range specs[i].Preds {
				if err := visit(p); err != nil {
					return err
				}
				if r == -1 {
					r = root[p]
				} else if root[p] != r {
					return fmt.Errorf("offline: task %s has predecessors from different graphs (%s, %s)",
						specs[i].Name, specs[r].Name, specs[root[p]].Name)
				}
				if depth[p]+1 > d {
					d = depth[p] + 1
				}
			}
			root[i] = r
			depth[i] = d
		}
		state[i] = 2
		return nil
	}
	for i := 0; i < n; i++ {
		if err := visit(i); err != nil {
			return nil, nil, err
		}
	}
	// Every root must be periodic.
	for i := 0; i < n; i++ {
		if specs[root[i]].Period <= 0 {
			return nil, nil, fmt.Errorf("offline: root %s of %s has no period",
				specs[root[i]].Name, specs[i].Name)
		}
	}
	return root, depth, nil
}
