// Package stress reimplements the slice of stress-ng the paper uses to load
// the platform during the Table 2 latency measurements:
//
//	stress-ng -C 8 -c 8 -T 8 -y 8
//
// i.e. 8 cache-thrashing stressors, 8 CPU stressors, 8 timer stressors and
// 8 sched_yield stressors. Stressors affect the simulation in two ways:
//
//  1. They determine a scalar load factor fed to the kernel latency models
//     (cache and timer stressors weigh more: they hit exactly the IRQ and
//     scheduling paths cyclictest measures).
//  2. Optionally, they run as simulation processes that generate timer and
//     scheduler event traffic, perturbing event interleavings the same way
//     real stressors perturb run queues.
package stress

import (
	"fmt"
	"time"

	"github.com/yasmin-rt/yasmin/internal/sim"
)

// Config mirrors the stress-ng flags the paper passes.
type Config struct {
	Cache int // -C: cache-thrashing stressors
	CPU   int // -c: CPU stressors
	Timer int // -T: timer stressors
	Yield int // -y: sched_yield stressors
}

// PaperConfig returns the exact configuration of the evaluation:
// stress-ng -C 8 -c 8 -T 8 -y 8.
func PaperConfig() Config { return Config{Cache: 8, CPU: 8, Timer: 8, Yield: 8} }

// Total returns the number of stressor processes.
func (c Config) Total() int { return c.Cache + c.CPU + c.Timer + c.Yield }

// Load converts the stressor mix into a saturating pressure factor in
// [0,1]. Cache and timer stressors perturb the wake-up path the most
// (coherence misses in the scheduler, timer-IRQ storms); CPU and yield
// stressors mostly consume cycles.
func (c Config) Load() float64 {
	w := 2.0*float64(c.Cache) + 1.0*float64(c.CPU) + 2.5*float64(c.Timer) + 0.5*float64(c.Yield)
	// Saturating: the paper's mix (w = 48) lands at ~0.91.
	return w / (w + 5)
}

// String formats the config stress-ng style.
func (c Config) String() string {
	return fmt.Sprintf("stress-ng -C %d -c %d -T %d -y %d", c.Cache, c.CPU, c.Timer, c.Yield)
}

// Spawn starts the stressors as simulation processes. They run until the
// engine stops; they generate event traffic (timer arms, yields) without
// occupying the middleware's shielded cores, mirroring the paper's setup
// where stress-ng runs under the OS while YASMIN cores are shielded via
// isolcpus.
func (c Config) Spawn(eng *sim.Engine) {
	for i := 0; i < c.Timer; i++ {
		id := i
		eng.Spawn(fmt.Sprintf("stress-timer-%d", id), func(p *sim.Proc) {
			// Timer stressors re-arm aggressively: 1-3ms periods.
			period := time.Duration(1+id%3) * time.Millisecond
			for {
				if intr, _ := p.Sleep(period); intr {
					return
				}
			}
		})
	}
	for i := 0; i < c.Yield; i++ {
		id := i
		eng.Spawn(fmt.Sprintf("stress-yield-%d", id), func(p *sim.Proc) {
			for {
				p.Yield()
				if intr, _ := p.Sleep(500 * time.Microsecond); intr {
					return
				}
			}
		})
	}
	// Cache and CPU stressors burn unshielded-core time; in the simulation
	// they only need to exist as slow heartbeat processes — their pressure
	// is carried by Load() into the kernel model.
	for i := 0; i < c.Cache+c.CPU; i++ {
		eng.Spawn(fmt.Sprintf("stress-cpu-%d", i), func(p *sim.Proc) {
			for {
				if intr, _ := p.Sleep(10 * time.Millisecond); intr {
					return
				}
			}
		})
	}
}
