package stress

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/sim"
)

func TestPaperConfig(t *testing.T) {
	c := PaperConfig()
	if c.Cache != 8 || c.CPU != 8 || c.Timer != 8 || c.Yield != 8 {
		t.Errorf("paper config = %+v", c)
	}
	if c.Total() != 32 {
		t.Errorf("total = %d, want 32", c.Total())
	}
	if got := c.String(); !strings.Contains(got, "-C 8 -c 8 -T 8 -y 8") {
		t.Errorf("String() = %q", got)
	}
}

func TestLoadMonotoneAndBounded(t *testing.T) {
	if l := (Config{}).Load(); l != 0 {
		t.Errorf("empty config load = %g, want 0", l)
	}
	prev := -1.0
	for n := 0; n <= 64; n += 8 {
		l := Config{Cache: n}.Load()
		if l < 0 || l >= 1 {
			t.Errorf("load(%d) = %g out of [0,1)", n, l)
		}
		if l <= prev && n > 0 {
			t.Errorf("load not increasing at %d", n)
		}
		prev = l
	}
	paper := PaperConfig().Load()
	if paper < 0.85 || paper > 0.95 {
		t.Errorf("paper load = %g, want ~0.91", paper)
	}
}

func TestSpawnGeneratesEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	Config{Timer: 2, Yield: 1, Cache: 1, CPU: 1}.Spawn(eng)
	if err := eng.Run(sim.Time(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if eng.Steps() < 20 {
		t.Errorf("only %d events; stressors not generating traffic", eng.Steps())
	}
}
