// Package jsonenc holds the shared allocation-free append-style JSON
// encoding helpers used by every hot serialization path in the tree: the
// telemetry JSONL exporter and the cluster wire codec both build their
// line-oriented records from these primitives, so there is exactly one
// copy of the decimal/escape machinery to tune and test.
//
// The style contract (see docs/TRACE.md "Streaming export"): callers
// append field keys as precomposed constant literals — `,"name":` with
// the separating comma and colon baked in — directly at the call site,
// where the compiler turns a constant-string append into immediate
// stores instead of a memmove call. The helpers here only ever append
// *values* onto a caller-owned buffer and allocate only when that buffer
// grows.
package jsonenc

import "math/bits"

const hexDigits = "0123456789abcdef"

// esc marks the bytes that need escaping inside a JSON string: quote,
// backslash, and the C0 control range. One table load per byte beats the
// three-comparison chain on the encode hot path.
var esc = [256]bool{'"': true, '\\': true}

func init() {
	for c := 0; c < 0x20; c++ {
		esc[c] = true
	}
}

// AppendString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters. Multi-byte UTF-8 passes through raw
// (valid JSON). Clean runs between escapes are copied in one append —
// task, topic and pool names almost never need escaping, so the common
// case is a single bulk copy.
//
//yasmin:noalloc
func AppendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !esc[c] {
			continue
		}
		b = append(b, s[start:i]...)
		if c == '"' || c == '\\' {
			b = append(b, '\\', c)
		} else {
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// digitPairs is the two-digit lookup table for AppendDec: index 2n holds
// the tens digit of n, 2n+1 the ones digit.
const digitPairs = "00010203040506070809" +
	"10111213141516171819" +
	"20212223242526272829" +
	"30313233343536373839" +
	"40414243444546474849" +
	"50515253545556575859" +
	"60616263646566676869" +
	"70717273747576777879" +
	"80818283848586878889" +
	"90919293949596979899"

var pow10 = [20]uint64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000, 100000000,
	1000000000, 10000000000, 100000000000, 1000000000000,
	10000000000000, 100000000000000, 1000000000000000,
	10000000000000000, 100000000000000000, 1000000000000000000,
	10000000000000000000,
}

// DecLen returns the number of decimal digits in v in constant time:
// floor(log2 · 1233/4096) approximates log10, then one table compare
// corrects the boundary. No divisions — those are AppendDec's whole cost,
// and doing them twice would defeat it.
//
//yasmin:noalloc
func DecLen(v uint64) int {
	if v == 0 {
		return 1
	}
	t := (bits.Len64(v) * 1233) >> 12
	if v >= pow10[t] {
		t++
	}
	return t
}

// AppendDec appends v in decimal. It beats strconv.AppendUint on hot
// paths with small-value fast paths (most record fields are one or two
// digits) and by writing two digits per division directly into the
// destination — no intermediate buffer, no copy. Integer fields dominate
// an encoded record, so this is where encode throughput is won.
//
//yasmin:noalloc
func AppendDec(b []byte, v uint64) []byte {
	if v < 10 {
		return append(b, byte('0'+v))
	}
	if v < 100 {
		return append(b, digitPairs[v*2], digitPairs[v*2+1])
	}
	if cap(b)-len(b) < 20 {
		b = append(b, make([]byte, 20)...)[:len(b)] //yasmin:alloc-ok amortized buffer growth
	}
	i := len(b) + DecLen(v)
	b = b[:i]
	for v >= 100 {
		q := v / 100
		r := (v - q*100) * 2
		i -= 2
		b[i] = digitPairs[r]
		b[i+1] = digitPairs[r+1]
		v = q
	}
	if v >= 10 {
		b[i-2] = digitPairs[v*2]
		b[i-1] = digitPairs[v*2+1]
	} else {
		b[i-1] = byte('0' + v)
	}
	return b
}

// AppendSigned appends v in decimal with a sign when negative.
//
//yasmin:noalloc
func AppendSigned(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	return AppendDec(b, uint64(v))
}

// AppendStringList appends vs as a JSON array of strings.
//
//yasmin:noalloc
func AppendStringList(b []byte, vs []string) []byte {
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = AppendString(b, v)
	}
	return append(b, ']')
}
