package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/yasmin-rt/yasmin/internal/cyclictest"
	"github.com/yasmin-rt/yasmin/internal/kernel"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/stress"
)

// Table2Config parameterises the latency comparison (Section 4.2).
type Table2Config struct {
	Opts   cyclictest.Options
	Stress stress.Config
	Seed   int64
}

// DefaultTable2Config mirrors the paper:
// cyclictest -t 6 -d 0 -i 10000 -m -l 10000 under stress-ng -C 8 -c 8 -T 8 -y 8.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Opts:   cyclictest.PaperOptions(),
		Stress: stress.PaperConfig(),
		Seed:   1,
	}
}

// QuickTable2Config shrinks the loop count for tests.
func QuickTable2Config() Table2Config {
	c := DefaultTable2Config()
	c.Opts.Loops = 500
	return c
}

// Table2Row is one line of the table.
type Table2Row struct {
	OS      string
	Variant string
	Min     time.Duration
	Max     time.Duration
	Avg     time.Duration
}

// scaledModel adjusts a base kernel model by a constant factor, used to
// model the slightly different code path of the stock cyclictest binary on
// LitmusRT versus the litmus-adapted one (paper rows "RTapps" vs
// "litmus+GSN-EDF": 74µs vs 84µs average).
type scaledModel struct {
	kernel.Model
	factor float64
}

func (m scaledModel) Latency(rng *rand.Rand, reason rt.WakeReason) time.Duration {
	return time.Duration(float64(m.Model.Latency(rng, reason)) * m.factor)
}

// Table2 reproduces all six rows of the table.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	load := cfg.Stress.Load()
	pl := platform.OdroidXU4()

	type variant struct {
		os     string
		name   string
		model  kernel.Model
		yasmin bool
	}
	variants := []variant{
		{"Linux+PREEMPT_RT 4.14-rt63", "YASMIN", &kernel.PreemptRT{Load: load}, true},
		{"Linux+PREEMPT_RT 4.14-rt63", "RTapps", &kernel.PreemptRT{Load: load}, false},
		{"LitmusRT 4.9.30", "YASMIN", &kernel.LitmusGSNEDF{Load: load}, true},
		{"LitmusRT 4.9.30", "RTapps", scaledModel{&kernel.LitmusGSNEDF{Load: load}, 0.90}, false},
		{"LitmusRT 4.9.30", "litmus+GSN-EDF", &kernel.LitmusGSNEDF{Load: load}, false},
		{"LitmusRT 4.9.30", "litmus+P-RES", &kernel.LitmusPRES{Load: load}, false},
	}
	var rows []Table2Row
	for i, v := range variants {
		seed := cfg.Seed + int64(i)*7919
		var res *cyclictest.Result
		var err error
		if v.yasmin {
			res, err = cyclictest.RunYASMIN(seed, pl, v.model, cfg.Opts)
		} else {
			res, err = cyclictest.RunNative(seed, pl, v.model, cfg.Opts)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 %s/%s: %w", v.os, v.name, err)
		}
		min, max, avg := res.Summary()
		rows = append(rows, Table2Row{OS: v.os, Variant: v.name, Min: min, Max: max, Avg: avg})
	}
	return rows, nil
}

// PrintTable2 renders the table like the paper.
func PrintTable2(w io.Writer, rows []Table2Row) error {
	if _, err := fmt.Fprintf(w, "%-28s %-16s %s\n", "OS", "Cyclictest", "Latency <min, max, avg> µs"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-28s %-16s <%d, %d, %d>\n",
			r.OS, r.Variant, r.Min.Microseconds(), r.Max.Microseconds(), r.Avg.Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
