// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation: Fig. 2 (scheduling overhead vs the
// Mollison & Anderson userspace G-EDF library), Table 2 (cyclictest latency
// across kernel substrates) and Fig. 4 (the SAR drone scheduling
// exploration). The cmd/ tools and the repository-level benchmarks are thin
// wrappers around these functions.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/mollison"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// Fig2Config parameterises the overhead comparison (Section 4.1). The paper
// varies task counts in [20,120] and utilisation in [0.2,2] with 5 task sets
// per point on 2 and 3 big cores of the Odroid-XU4.
type Fig2Config struct {
	TaskCounts []int
	Utils      []float64
	SetsPer    int
	CoreCounts []int
	Horizon    time.Duration
	Seed       int64
}

// DefaultFig2Config returns the paper-shaped grid (coarsened utilisation
// axis; override for the full 1360-set sweep).
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		TaskCounts: []int{20, 40, 60, 80, 100, 120},
		Utils:      []float64{0.2, 0.5, 0.8, 1.1, 1.4, 1.7, 2.0},
		SetsPer:    5,
		CoreCounts: []int{2, 3},
		Horizon:    time.Second,
		Seed:       1,
	}
}

// QuickFig2Config returns a reduced grid for tests and benchmarks.
func QuickFig2Config() Fig2Config {
	return Fig2Config{
		TaskCounts: []int{20, 60, 120},
		Utils:      []float64{0.5, 1.5},
		SetsPer:    2,
		CoreCounts: []int{2},
		Horizon:    500 * time.Millisecond,
		Seed:       1,
	}
}

// Fig2Row is one measured run.
type Fig2Row struct {
	System string // "YASMIN" or "M&A"
	Cores  int
	Tasks  int
	Util   float64
	AvgOvh time.Duration
	MaxOvh time.Duration
	Jobs   int64
}

// Fig2 runs the sweep and returns one row per (system, cores, tasks, util,
// set).
func Fig2(cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.SetsPer <= 0 || len(cfg.TaskCounts) == 0 || len(cfg.Utils) == 0 || len(cfg.CoreCounts) == 0 {
		return nil, fmt.Errorf("experiments: empty Fig2 grid")
	}
	pl := platform.OdroidXU4()
	bigCores := pl.CoresOfKind(platform.BigCore) // 4,5,6,7
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []Fig2Row
	for _, cores := range cfg.CoreCounts {
		if cores+1 > len(bigCores) {
			return nil, fmt.Errorf("experiments: %d worker cores + scheduler exceed the big cluster", cores)
		}
		for _, n := range cfg.TaskCounts {
			for _, u := range cfg.Utils {
				for set := 0; set < cfg.SetsPer; set++ {
					seed := rng.Int63()
					ts, err := taskset.Generate(rand.New(rand.NewSource(seed)), taskset.DRSConfig{
						N:                n,
						TotalUtilization: u,
						PeriodMin:        10 * time.Millisecond,
						PeriodMax:        100 * time.Millisecond,
					})
					if err != nil {
						return nil, err
					}
					yasRow, err := runYASMINOverhead(seed, ts, cores, bigCores, cfg.Horizon)
					if err != nil {
						return nil, err
					}
					yasRow.Tasks, yasRow.Util, yasRow.Cores = n, u, cores
					rows = append(rows, *yasRow)

					maRes, err := mollison.Run(seed, platform.OdroidXU4(), ts, mollison.Config{
						Workers:     cores,
						WorkerCores: bigCores[:cores],
						Horizon:     cfg.Horizon,
					})
					if err != nil {
						return nil, err
					}
					rows = append(rows, Fig2Row{
						System: "M&A",
						Cores:  cores,
						Tasks:  n,
						Util:   u,
						AvgOvh: maRes.Overheads.Total().Mean(),
						MaxOvh: maRes.Overheads.Total().Max(),
						Jobs:   maRes.Recorder.TotalJobs(),
					})
				}
			}
		}
	}
	return rows, nil
}

// runYASMINOverhead executes one synthetic task set under YASMIN G-EDF with
// a dedicated scheduler core and measures middleware overhead.
func runYASMINOverhead(seed int64, ts *taskset.Set, workers int, bigCores []int, horizon time.Duration) (*Fig2Row, error) {
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Workers:        workers,
		WorkerCores:    bigCores[:workers],
		SchedulerCore:  bigCores[workers], // the remaining big core (paper 4.1)
		Mapping:        core.MappingGlobal,
		Priority:       core.PriorityEDF,
		Preemption:     true,
		MaxTasks:       ts.Len(),
		MaxPendingJobs: 4096,
	}
	app, err := core.New(cfg, env)
	if err != nil {
		return nil, err
	}
	for i := range ts.Tasks {
		tk := &ts.Tasks[i]
		tid, err := app.TaskDecl(core.TData{Name: tk.Name, Period: tk.Period, Deadline: tk.Deadline})
		if err != nil {
			return nil, err
		}
		wcet := tk.WCET
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			// The paper reuses [28]'s task body: spin to a pre-defined WCET.
			return x.Compute(wcet)
		}, nil, core.VSelect{WCET: wcet}); err != nil {
			return nil, err
		}
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.SleepUntil(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(horizon + 30*time.Second)); err != nil {
		return nil, err
	}
	return &Fig2Row{
		System: "YASMIN",
		AvgOvh: app.Overheads().Total().Mean(),
		MaxOvh: app.Overheads().Total().Max(),
		Jobs:   app.Recorder().TotalJobs(),
	}, nil
}

// Fig2Series is an aggregated curve point: avg-of-avgs and max-of-maxes at
// one x value.
type Fig2Series struct {
	System string
	X      float64 // task count or utilisation
	Avg    time.Duration
	Max    time.Duration
	Runs   int
}

// AggregateFig2 groups rows by system and the chosen x axis.
func AggregateFig2(rows []Fig2Row, byTasks bool) []Fig2Series {
	type key struct {
		sys string
		x   float64
	}
	agg := make(map[key]*Fig2Series)
	for _, r := range rows {
		x := float64(r.Tasks)
		if !byTasks {
			x = r.Util
		}
		k := key{r.System, x}
		s := agg[k]
		if s == nil {
			s = &Fig2Series{System: r.System, X: x}
			agg[k] = s
		}
		s.Avg += r.AvgOvh
		if r.MaxOvh > s.Max {
			s.Max = r.MaxOvh
		}
		s.Runs++
	}
	var out []Fig2Series
	for _, s := range agg {
		s.Avg /= time.Duration(s.Runs)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].System != out[j].System {
			return out[i].System < out[j].System
		}
		return out[i].X < out[j].X
	})
	return out
}

// PrintFig2 renders both panels (by task count, by utilisation) like the
// figure.
func PrintFig2(w io.Writer, rows []Fig2Row) error {
	if _, err := fmt.Fprintf(w, "Fig 2a — scheduling overhead by number of tasks (avg / max, µs)\n"); err != nil {
		return err
	}
	if err := printSeries(w, AggregateFig2(rows, true), "tasks"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nFig 2b — scheduling overhead by utilisation (avg / max, µs)\n"); err != nil {
		return err
	}
	return printSeries(w, AggregateFig2(rows, false), "util")
}

func printSeries(w io.Writer, series []Fig2Series, xname string) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "  %-8s %s=%-6g avg=%-10.1f max=%-10.1f (%d runs)\n",
			s.System, xname, s.X,
			float64(s.Avg)/float64(time.Microsecond),
			float64(s.Max)/float64(time.Microsecond),
			s.Runs); err != nil {
			return err
		}
	}
	return nil
}

// fig2SummaryStat is reused by tests: mean avg overhead per system.
func fig2SummaryStat(rows []Fig2Row, system string) (avg time.Duration, max time.Duration) {
	st := trace.NewStat(system, false)
	for _, r := range rows {
		if r.System == system {
			st.Add(r.AvgOvh)
			if r.MaxOvh > max {
				max = r.MaxOvh
			}
		}
	}
	return st.Mean(), max
}
