package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFig2QuickShape(t *testing.T) {
	rows, err := Fig2(QuickFig2Config())
	if err != nil {
		t.Fatal(err)
	}
	// 3 task counts x 2 utils x 2 sets x 1 core count x 2 systems = 24 rows.
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	yasAvg, yasMax := fig2SummaryStat(rows, "YASMIN")
	maAvg, _ := fig2SummaryStat(rows, "M&A")
	if yasAvg == 0 || maAvg == 0 {
		t.Fatal("zero overhead measured")
	}
	// Headline result: YASMIN's average overhead is below M&A's.
	if yasAvg >= maAvg {
		t.Errorf("YASMIN avg overhead %v not below M&A %v", yasAvg, maAvg)
	}
	// Paper's own caveat: YASMIN's max is high relative to its average
	// (batched releases at hyperperiod points).
	if yasMax < 10*yasAvg {
		t.Errorf("YASMIN max %v vs avg %v: expected a spiky max", yasMax, yasAvg)
	}
}

func TestFig2ScalabilityInTasks(t *testing.T) {
	cfg := QuickFig2Config()
	rows, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := AggregateFig2(rows, true)
	// Extract avg overhead at smallest and largest task count per system.
	get := func(sys string, x float64) time.Duration {
		for _, s := range series {
			if s.System == sys && s.X == x {
				return s.Avg
			}
		}
		t.Fatalf("missing series point %s/%g", sys, x)
		return 0
	}
	maGrowth := float64(get("M&A", 120)) / float64(get("M&A", 20))
	yasGrowth := float64(get("YASMIN", 120)) / float64(get("YASMIN", 20))
	// Better scalability in the number of tasks (paper, Section 4.1).
	if yasGrowth >= maGrowth {
		t.Errorf("YASMIN overhead growth %.2fx not below M&A %.2fx", yasGrowth, maGrowth)
	}
}

func TestFig2Printer(t *testing.T) {
	rows, err := Fig2(Fig2Config{
		TaskCounts: []int{20}, Utils: []float64{0.5}, SetsPer: 1,
		CoreCounts: []int{2}, Horizon: 200 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PrintFig2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 2a") || !strings.Contains(out, "YASMIN") || !strings.Contains(out, "M&A") {
		t.Errorf("output = %q", out)
	}
}

func TestFig2RejectsEmptyGrid(t *testing.T) {
	if _, err := Fig2(Fig2Config{}); err == nil {
		t.Error("want error for empty grid")
	}
}

func TestTable2QuickShape(t *testing.T) {
	rows, err := Table2(QuickTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.OS+"/"+r.Variant] = r
	}
	prtY := byKey["Linux+PREEMPT_RT 4.14-rt63/YASMIN"]
	prtN := byKey["Linux+PREEMPT_RT 4.14-rt63/RTapps"]
	litY := byKey["LitmusRT 4.9.30/YASMIN"]
	litN := byKey["LitmusRT 4.9.30/RTapps"]
	gsn := byKey["LitmusRT 4.9.30/litmus+GSN-EDF"]
	pres := byKey["LitmusRT 4.9.30/litmus+P-RES"]

	// Shape assertions from the paper's Table 2:
	// 1. On each kernel, YASMIN's average is above the native variant.
	if prtY.Avg <= prtN.Avg {
		t.Errorf("PREEMPT_RT: YASMIN avg %v not above RTapps %v", prtY.Avg, prtN.Avg)
	}
	if litY.Avg <= litN.Avg {
		t.Errorf("Litmus: YASMIN avg %v not above RTapps %v", litY.Avg, litN.Avg)
	}
	// 2. Litmus latencies are well below PREEMPT_RT latencies.
	if litN.Avg >= prtN.Avg {
		t.Errorf("Litmus RTapps avg %v not below PREEMPT_RT %v", litN.Avg, prtN.Avg)
	}
	// 3. P-RES is reservation-quantised around 1ms, far above GSN-EDF.
	if pres.Min < 900*time.Microsecond || pres.Avg < gsn.Avg*5 {
		t.Errorf("P-RES <%v,%v,%v> not reservation-shaped vs GSN-EDF avg %v",
			pres.Min, pres.Max, pres.Avg, gsn.Avg)
	}
	// 4. Magnitudes: PREEMPT_RT avg in the hundreds of µs.
	if prtN.Avg < 200*time.Microsecond || prtN.Avg > 900*time.Microsecond {
		t.Errorf("PREEMPT_RT RTapps avg %v outside the expected few-hundred-µs band", prtN.Avg)
	}
}

func TestTable2Printer(t *testing.T) {
	rows := []Table2Row{{OS: "k", Variant: "v", Min: time.Microsecond, Max: 2 * time.Microsecond, Avg: time.Microsecond}}
	var buf bytes.Buffer
	if err := PrintTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<1, 2, 1>") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestFig4QuickShape(t *testing.T) {
	rows, err := Fig4(QuickFig4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (4 policies x 3 version modes)", len(rows))
	}
	byKey := map[string]Fig4Row{}
	for _, r := range rows {
		byKey[r.Policy+"/"+r.Versions] = r
	}
	for _, pol := range []string{"G-EDF", "G-DM", "P-EDF", "P-DM"} {
		cpu := byKey[pol+"/cpu"]
		gpu := byKey[pol+"/gpu"]
		both := byKey[pol+"/both"]
		if cpu.Frames == 0 || gpu.Frames == 0 || both.Frames == 0 {
			t.Fatalf("%s: empty runs: %+v %+v %+v", pol, cpu, gpu, both)
		}
		// GPU shortens the average frame time versus CPU (paper).
		if gpu.AvgFrame >= cpu.AvgFrame {
			t.Errorf("%s: gpu avg frame %v not below cpu %v", pol, gpu.AvgFrame, cpu.AvgFrame)
		}
		// CPU-only misses frame deadlines (chain exceeds the 500ms period).
		if cpu.FrameMissRatio == 0 {
			t.Errorf("%s: cpu-only frame misses = 0, expected misses", pol)
		}
		// Multi-version configurations reduce misses vs CPU-only (the
		// paper's headline: only both-version configs cut misses).
		if both.FrameMissRatio >= cpu.FrameMissRatio {
			t.Errorf("%s: both miss ratio %.3f not below cpu-only %.3f",
				pol, both.FrameMissRatio, cpu.FrameMissRatio)
		}
	}
	var buf bytes.Buffer
	if err := PrintFig4(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "G-EDF") {
		t.Errorf("printer output = %q", buf.String())
	}
}

func TestFig4RejectsBadConfig(t *testing.T) {
	if _, err := Fig4(Fig4Config{Workers: 0, Mission: time.Second}); err == nil {
		t.Error("want error for zero workers")
	}
}

func TestFig4ContendedRegimeMultiVersionWins(t *testing.T) {
	// When the camera outpaces the GPU chain (400ms period < 408ms chain),
	// the accelerator is contended across frames: GPU-only queues on the
	// accelerator while "both" falls back to CPU versions — the paper's
	// "only configurations decreasing deadline misses include both CPU and
	// GPU versions, with automatic selection by the scheduler".
	cfg := QuickFig4Config()
	cfg.FramePeriod = 400 * time.Millisecond
	cfg.Mission = 20 * time.Second
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig4Row{}
	for _, r := range rows {
		byKey[r.Policy+"/"+r.Versions] = r
	}
	for _, pol := range []string{"G-EDF", "G-DM"} {
		gpu := byKey[pol+"/gpu"]
		both := byKey[pol+"/both"]
		if both.AvgFrame >= gpu.AvgFrame {
			t.Errorf("%s: both avg frame %v not below contended gpu-only %v",
				pol, both.AvgFrame, gpu.AvgFrame)
		}
		if both.TotalMissRatio >= gpu.TotalMissRatio {
			t.Errorf("%s: both total miss %.3f not below gpu-only %.3f",
				pol, both.TotalMissRatio, gpu.TotalMissRatio)
		}
	}
}
