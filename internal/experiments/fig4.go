package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sar"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

// Fig4Config parameterises the drone scheduling exploration (Section 5).
type Fig4Config struct {
	Mission time.Duration
	Workers int
	Seed    int64
	// BoatProb drives detections (and secure-mode AES encodes).
	BoatProb float64
	// FramePeriod overrides the camera rate (default 500ms = 2 fps). At
	// rates where the GPU chain exceeds the period, the accelerator
	// becomes contended across frames and the multi-version "both"
	// configurations beat GPU-only — the mechanism behind the paper's
	// "only configurations decreasing deadline misses include both CPU and
	// GPU versions".
	FramePeriod time.Duration
}

// DefaultFig4Config runs a 120s mission on the Apalis TK1 with 3 worker
// cores (the fourth hosts the scheduler thread).
func DefaultFig4Config() Fig4Config {
	return Fig4Config{Mission: 120 * time.Second, Workers: 3, Seed: 1, BoatProb: 0.3}
}

// QuickFig4Config shortens the mission for tests.
func QuickFig4Config() Fig4Config {
	c := DefaultFig4Config()
	c.Mission = 15 * time.Second
	return c
}

// Fig4Row is one bar group of the figure.
type Fig4Row struct {
	Policy   string // G-EDF, G-DM, P-EDF, P-DM
	Versions string // cpu, gpu, both
	AvgFrame time.Duration
	MaxFrame time.Duration
	Frames   int64
	// FrameMissRatio is the deadline-miss ratio of the end-to-end pipeline.
	FrameMissRatio float64
	// FCMisses counts flight-control handler deadline misses.
	FCMisses int64
	FCJobs   int64
	// TotalMissRatio covers all tasks.
	TotalMissRatio float64
}

// fig4Partition statically assigns the SAR tasks to workers for the
// partitioned policies. The flight-control handler (10ms deadline) must not
// share a worker with the GPU-section tasks, whose accelerator sections are
// not preemptible; it lives with the preemptible CPU stages instead.
func fig4Partition(workers int) map[string]int {
	if workers >= 3 {
		return map[string]int{
			"fetch": 0, "extract_exif": 0, "detect_objects": 0,
			"augment_exif": 1, "store": 1, "estimate_speed": 1, "highlight_objects": 1,
			"fc_msg_handler": 2, "create_packet": 2, "encode": 2, "send": 2,
		}
	}
	return map[string]int{
		"fetch": 0, "extract_exif": 0, "detect_objects": 0,
		"estimate_speed": 0, "highlight_objects": 0,
		"augment_exif": 1, "store": 1, "fc_msg_handler": 1,
		"create_packet": 1, "encode": 1, "send": 1,
	}
}

// Fig4 runs the full 12-configuration exploration.
func Fig4(cfg Fig4Config) ([]Fig4Row, error) {
	if cfg.Workers <= 0 || cfg.Mission <= 0 {
		return nil, fmt.Errorf("experiments: bad Fig4 config %+v", cfg)
	}
	policies := []struct {
		name    string
		mapping core.MappingScheme
		prio    core.PriorityAssignment
	}{
		{"G-EDF", core.MappingGlobal, core.PriorityEDF},
		{"G-DM", core.MappingGlobal, core.PriorityDM},
		{"P-EDF", core.MappingPartitioned, core.PriorityEDF},
		{"P-DM", core.MappingPartitioned, core.PriorityDM},
	}
	versions := []sar.VersionMode{sar.CPUOnly, sar.GPUOnly, sar.Both}
	var rows []Fig4Row
	for _, pol := range policies {
		for _, vm := range versions {
			row, err := runFig4One(cfg, pol.name, pol.mapping, pol.prio, vm)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig4 %s/%s: %w", pol.name, vm, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runFig4One(cfg Fig4Config, polName string, mapping core.MappingScheme,
	prio core.PriorityAssignment, vm sar.VersionMode) (*Fig4Row, error) {
	eng := sim.NewEngine(cfg.Seed)
	env, err := rt.NewSimEnv(eng, platform.ApalisTK1(), nil)
	if err != nil {
		return nil, err
	}
	cores := make([]int, cfg.Workers)
	for i := range cores {
		cores[i] = i + 1
	}
	appCfg := core.Config{
		Workers:        cfg.Workers,
		WorkerCores:    cores,
		SchedulerCore:  0,
		Mapping:        mapping,
		Priority:       prio,
		VersionSelect:  core.SelectMode,
		Preemption:     true,
		MaxTasks:       16,
		MaxPendingJobs: 256,
	}
	app, err := core.New(appCfg, env)
	if err != nil {
		return nil, err
	}
	params := sar.Params{
		Versions:       vm,
		Seed:           cfg.Seed,
		BoatProb:       cfg.BoatProb,
		SecureOnDetect: true,
		FramePeriod:    cfg.FramePeriod,
	}
	if mapping == core.MappingPartitioned {
		params.VirtCore = fig4Partition(cfg.Workers)
	}
	if _, err := sar.Build(app, params); err != nil {
		return nil, err
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.SleepUntil(cfg.Mission)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(cfg.Mission + 2*time.Minute)); err != nil {
		return nil, err
	}

	rec := app.Recorder()
	row := &Fig4Row{Policy: polName, Versions: vm.String()}
	if g := rec.Task("graph:send"); g != nil {
		_, max, avg := g.Response.Summary()
		row.AvgFrame, row.MaxFrame = avg, max
		row.Frames = g.Jobs
		if g.Jobs > 0 {
			row.FrameMissRatio = float64(g.Misses) / float64(g.Jobs)
		}
	}
	if fc := rec.Task("fc_msg_handler"); fc != nil {
		row.FCMisses, row.FCJobs = fc.Misses, fc.Jobs
	}
	row.TotalMissRatio = rec.MissRatio()
	return row, nil
}

// PrintFig4 renders the exploration like the figure's two panels.
func PrintFig4(w io.Writer, rows []Fig4Row) error {
	if _, err := fmt.Fprintf(w, "%-7s %-5s %12s %12s %8s %10s %12s %10s\n",
		"policy", "vers", "avg-frame", "max-frame", "frames", "frame-miss", "fc-miss", "total-miss"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-7s %-5s %12s %12s %8d %9.1f%% %7d/%-5d %9.2f%%\n",
			r.Policy, r.Versions,
			r.AvgFrame.Round(time.Millisecond), r.MaxFrame.Round(time.Millisecond),
			r.Frames,
			100*r.FrameMissRatio, r.FCMisses, r.FCJobs,
			100*r.TotalMissRatio); err != nil {
			return err
		}
	}
	return nil
}
