package yasmin_test

// Benchmark harness: one benchmark per table/figure of the paper plus
// ablation benches for the design choices DESIGN.md calls out. The
// experiment benchmarks report domain metrics (overhead, latency, miss
// ratios) via b.ReportMetric on top of the usual ns/op, so a single
// `go test -bench=. -benchmem` regenerates every headline number.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin/internal/cluster"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/cyclictest"
	"github.com/yasmin-rt/yasmin/internal/experiments"
	"github.com/yasmin-rt/yasmin/internal/kernel"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/stress"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

// --- Fig. 2: scheduling overhead, YASMIN vs Mollison & Anderson ---

func BenchmarkFig2Overhead(b *testing.B) {
	cfg := experiments.QuickFig2Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var yasAvg, maAvg, yasMax, maMax time.Duration
		var ny, nm int
		for _, r := range rows {
			switch r.System {
			case "YASMIN":
				yasAvg += r.AvgOvh
				if r.MaxOvh > yasMax {
					yasMax = r.MaxOvh
				}
				ny++
			default:
				maAvg += r.AvgOvh
				if r.MaxOvh > maMax {
					maMax = r.MaxOvh
				}
				nm++
			}
		}
		b.ReportMetric(float64(yasAvg.Microseconds())/float64(ny), "yasmin-avg-µs")
		b.ReportMetric(float64(maAvg.Microseconds())/float64(nm), "ma-avg-µs")
		b.ReportMetric(float64(yasMax.Microseconds()), "yasmin-max-µs")
		b.ReportMetric(float64(maMax.Microseconds()), "ma-max-µs")
	}
}

// --- Table 2: cyclictest latency across kernel substrates ---

func BenchmarkTable2Cyclictest(b *testing.B) {
	cfg := experiments.QuickTable2Config()
	cfg.Opts.Loops = 2000
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := strings.ReplaceAll(r.OS+"/"+r.Variant, " ", "_")
			b.ReportMetric(float64(r.Avg.Microseconds()), name+"-avg-µs")
		}
	}
}

// --- Fig. 4: SAR drone scheduling exploration ---

func BenchmarkFig4SAR(b *testing.B) {
	cfg := experiments.QuickFig4Config()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.FrameMissRatio, r.Policy+"/"+r.Versions+"-miss-%")
		}
	}
}

// --- Channel/topic data-plane throughput (wall clock, real host time) ---

// chanBenchRow is one BENCH_channels.json record.
type chanBenchRow struct {
	Name                 string  `json:"name"`
	Publishers           int     `json:"publishers"`
	Subscribers          int     `json:"subscribers"`
	Policy               string  `json:"policy"`
	Published            int64   `json:"published"`
	Delivered            int64   `json:"delivered"`
	ElapsedNS            int64   `json:"elapsed_ns"`
	MsgPerSec            float64 `json:"msgs_per_sec"`
	DeliveriesPerPublish float64 `json:"deliveries_per_publish"`
}

// runTopicThroughput drives nPub publisher tasks and nSub subscriber tasks
// through one topic on the wall-clock backend until at least b.N messages
// were published, and returns publish/delivery counts. Fan-out shares one
// buffered entry among all subscribers; fan-in >1 publishers exercises the
// lock-free MPSC staging ring.
func runTopicThroughput(b *testing.B, nPub, nSub int, policy core.OverflowPolicy) (published, delivered int64) {
	b.Helper()
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := core.New(core.Config{
		Workers: 4, Priority: core.PriorityRM, MaxPendingJobs: 256,
	}, env)
	if err != nil {
		b.Fatal(err)
	}
	top, err := app.TopicDecl("bench", core.TopicOpts{Capacity: 256, Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	goal := int64(b.N)
	var pubCount, subCount atomic.Int64
	payload := &chanBenchRow{} // one static payload: delivery must not copy it
	for p := 0; p < nPub; p++ {
		tid, err := app.TaskDecl(core.TData{Name: fmt.Sprintf("pub%d", p), Period: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			for i := 0; i < 4096; i++ {
				if pubCount.Load() >= goal {
					return nil
				}
				if err := x.Publish(top, payload); err != nil {
					return nil // Reject full: retry next activation
				}
				pubCount.Add(1)
			}
			return nil
		}, nil, core.VSelect{}); err != nil {
			b.Fatal(err)
		}
		if err := app.TopicPub(tid, top); err != nil {
			b.Fatal(err)
		}
	}
	for s := 0; s < nSub; s++ {
		tid, err := app.TaskDecl(core.TData{Name: fmt.Sprintf("sub%d", s), Period: time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			for {
				_, ok, err := x.Take(top)
				if err != nil || !ok {
					return err
				}
				subCount.Add(1)
			}
		}, nil, core.VSelect{}); err != nil {
			b.Fatal(err)
		}
		if err := app.TopicSub(tid, top); err != nil {
			b.Fatal(err)
		}
	}
	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			b.Errorf("start: %v", err)
			return
		}
		deadline := c.Now() + 30*time.Second
		for pubCount.Load() < goal && c.Now() < deadline {
			c.Sleep(2 * time.Millisecond)
		}
		// Let subscribers drain the tail before stopping.
		for i := 0; i < 50 && policy == core.Reject &&
			subCount.Load() < pubCount.Load()*int64(nSub); i++ {
			c.Sleep(2 * time.Millisecond)
		}
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	if err := app.FirstError(); err != nil {
		b.Fatal(err)
	}
	return pubCount.Load(), subCount.Load()
}

// BenchmarkChannels measures data-plane throughput for the three topic
// shapes — the legacy 1→1 FIFO, 1→N fan-out over per-subscriber cursors,
// and N→1 fan-in through the MPSC staging ring — and emits the results as
// BENCH_channels.json for CI trend tracking. Fan-out delivers M times per
// publish from ONE buffered entry: deliveries_per_publish ~= M with
// allocation counts flat in M (no per-subscriber payload copies).
func BenchmarkChannels(b *testing.B) {
	// Keyed by shape name: the harness calls each sub-benchmark several
	// times while calibrating b.N, and only the final (largest) run should
	// land in the JSON artifact.
	rowByName := map[string]chanBenchRow{}
	shapes := []struct {
		name       string
		pubs, subs int
		policy     core.OverflowPolicy
	}{
		{"1pub-1sub-reject", 1, 1, core.Reject},
		{"1pub-4sub-reject-fanout", 1, 4, core.Reject},
		{"4pub-1sub-reject-mpsc", 4, 1, core.Reject},
		{"1pub-2sub-latest-conflate", 1, 2, core.Latest},
	}
	for _, tc := range shapes {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			published, delivered := runTopicThroughput(b, tc.pubs, tc.subs, tc.policy)
			elapsed := time.Since(start)
			if published == 0 {
				b.Fatal("nothing published")
			}
			msgsPerSec := float64(published) / elapsed.Seconds()
			b.ReportMetric(msgsPerSec, "msgs/s")
			b.ReportMetric(float64(delivered)/float64(published), "deliveries/publish")
			rowByName[tc.name] = chanBenchRow{
				Name:                 tc.name,
				Publishers:           tc.pubs,
				Subscribers:          tc.subs,
				Policy:               tc.policy.String(),
				Published:            published,
				Delivered:            delivered,
				ElapsedNS:            elapsed.Nanoseconds(),
				MsgPerSec:            msgsPerSec,
				DeliveriesPerPublish: float64(delivered) / float64(published),
			}
		})
	}
	rows := make([]chanBenchRow, 0, len(shapes))
	for _, tc := range shapes {
		if row, ok := rowByName[tc.name]; ok {
			rows = append(rows, row)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_channels.json", out, 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Cluster data plane: wire codec and cross-node forwarding ---

// clusterBenchRow is one BENCH_cluster.json record.
type clusterBenchRow struct {
	Name          string  `json:"name"`
	Frames        int64   `json:"frames"`
	NSPerFrame    float64 `json:"ns_per_frame"`
	FramesPerSec  float64 `json:"frames_per_sec"`
	BytesPerFrame float64 `json:"bytes_per_frame,omitempty"`
}

// clusterBenchYAML saturates the cross-node path: every topic publishes on
// node 0 at 1ms and is consumed on node 1, so the run is dominated by
// forward -> transport -> shard ingress -> remote publish.
const clusterBenchYAML = `
name: cluster-bench
seed: 17
duration: 200ms
workers: 2
nodes:
  count: 2
groups:
  - name: bg
    count: 2
    period:
      min: 20ms
      max: 40ms
    utilization: 0.02
topics:
  - name: link
    count: 4
    pubs: 1
    subs: 1
    capacity: 64
    policy: reject
    publish_period: 1ms
    consume_period: 1ms
    pub_nodes: [0]
    sub_nodes: [1]
`

// BenchmarkClusterDataPlane measures the cluster data plane: the wire codec
// in isolation (encode + parse one data frame, allocation-free), and a
// 2-node co-simulated cluster saturating cross-node topics end to end
// (declaration-time forwarder -> in-memory transport -> sharded ingress ->
// remote publish, checker running). Rows land in BENCH_cluster.json for CI
// trend tracking.
func BenchmarkClusterDataPlane(b *testing.B) {
	// Keyed by sub-benchmark: the harness re-runs each body while
	// calibrating b.N, and only the final (largest-N) row should land in
	// the JSON.
	rows := map[string]clusterBenchRow{}

	b.Run("frame-codec", func(b *testing.B) {
		f := cluster.Frame{
			Kind: cluster.FrameData, Origin: 3, Topic: "camera-detections-1",
			Pub: 17, Epoch: 4, SentAt: 123456789, Val: 987654321,
		}
		buf := make([]byte, 0, 256)
		var bytes int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Seq = uint64(i + 1)
			buf = cluster.AppendFrame(buf[:0], &f)
			bytes += int64(len(buf))
			g, err := cluster.ParseFrame(buf)
			if err != nil || g.Seq != f.Seq {
				b.Fatalf("round-trip broke at seq %d: %v", f.Seq, err)
			}
		}
		b.StopTimer()
		rows["frame-codec"] = clusterBenchRow{
			Name:          "frame-codec",
			Frames:        int64(b.N),
			NSPerFrame:    float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			FramesPerSec:  float64(b.N) / b.Elapsed().Seconds(),
			BytesPerFrame: float64(bytes) / float64(b.N),
		}
	})

	b.Run("sim-2node", func(b *testing.B) {
		sc, err := scenario.Load([]byte(clusterBenchYAML), "bench.yaml")
		if err != nil {
			b.Fatal(err)
		}
		var frames int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := scenario.Run(sc)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Violations) != 0 {
				b.Fatalf("violations: %v", rep.Violations)
			}
			for _, n := range rep.Nodes {
				frames += int64(n.FramesReceived)
			}
		}
		b.StopTimer()
		if frames == 0 {
			b.Fatal("no frames crossed the wire")
		}
		perSec := float64(frames) / b.Elapsed().Seconds()
		b.ReportMetric(perSec, "frames/s")
		rows["sim-2node"] = clusterBenchRow{
			Name:         "sim-2node",
			Frames:       frames,
			NSPerFrame:   float64(b.Elapsed().Nanoseconds()) / float64(frames),
			FramesPerSec: perSec,
		}
	})

	var report struct {
		Rows []clusterBenchRow `json:"rows"`
	}
	for _, name := range []string{"frame-codec", "sim-2node"} {
		if row, ok := rows[name]; ok {
			report.Rows = append(report.Rows, row)
		}
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cluster.json", out, 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Live reconfiguration: admission latency and quiescent-barrier pause ---

// reconfigBenchRow is the BENCH_reconfig.json record.
type reconfigBenchRow struct {
	Name         string `json:"name"`
	LiveTasks    int    `json:"live_tasks"`
	Transactions int64  `json:"transactions"`
	// CallAvg/CallMax time the whole Reconfigure call: staging, validation,
	// the online admission test and the commit.
	CallAvgNS int64 `json:"call_avg_ns"`
	CallMaxNS int64 `json:"call_max_ns"`
	// PauseAvg/PauseMax time the quiescent barrier alone — how long tasks
	// interacting with the middleware can be held while the tables swap.
	PauseAvgNS int64 `json:"pause_avg_ns"`
	PauseMaxNS int64 `json:"pause_max_ns"`
}

// BenchmarkReconfigure measures live reconfiguration against a running
// wall-clock application: each iteration admits a task in one transaction
// and retires it in the next, with admission analysing the full live task
// set. Reported metrics split the admission-path latency (whole call) from
// the worst-case pause at the quiescent barrier; BENCH_reconfig.json feeds
// the CI trend job.
func BenchmarkReconfigure(b *testing.B) {
	rowByName := map[string]reconfigBenchRow{}
	for _, nTasks := range []int{8, 64} {
		name := fmt.Sprintf("live-tasks-%d", nTasks)
		b.Run(name, func(b *testing.B) {
			env := rt.NewOSEnv()
			env.Spin = false
			app, err := core.New(core.Config{
				Workers: 4, Priority: core.PriorityEDF,
				MaxTasks: nTasks + 2, MaxPendingJobs: 4 * (nTasks + 2),
			}, env)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < nTasks; i++ {
				tid, err := app.TaskDecl(core.TData{
					Name:   fmt.Sprintf("t%d", i),
					Period: time.Duration(5+i%7) * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
					return nil
				}, nil, core.VSelect{WCET: 20 * time.Microsecond}); err != nil {
					b.Fatal(err)
				}
			}
			var callTotal, callMax time.Duration
			env.RunMain(func(c rt.Ctx) {
				if err := app.Start(c); err != nil {
					b.Errorf("start: %v", err)
					return
				}
				c.Sleep(5 * time.Millisecond) // let the schedule settle
				body := func(x *core.ExecCtx, _ any) error { return nil }
				for i := 0; i < b.N; i++ {
					t0 := time.Now()
					var err error
					if i%2 == 0 {
						err = app.Reconfigure(c, func(tx *core.Reconfig) error {
							id, err := tx.AddTask(core.TData{Name: "dyn", Period: 5 * time.Millisecond})
							if err != nil {
								return err
							}
							_, err = tx.AddVersion(id, body, nil, core.VSelect{WCET: 20 * time.Microsecond})
							return err
						})
					} else {
						err = app.Reconfigure(c, func(tx *core.Reconfig) error {
							return tx.RemoveTaskByName("dyn")
						})
					}
					d := time.Since(t0)
					callTotal += d
					if d > callMax {
						callMax = d
					}
					if err != nil {
						b.Errorf("transaction %d: %v", i, err)
						break
					}
				}
				app.Stop(c)
				app.Cleanup(c)
			})
			env.Wait()
			if b.Failed() {
				return
			}
			var pauseTotal, pauseMax time.Duration
			recs := app.Recorder().Reconfigs()
			for _, r := range recs {
				pauseTotal += r.Pause
				if r.Pause > pauseMax {
					pauseMax = r.Pause
				}
			}
			n := int64(len(recs))
			if n == 0 {
				b.Fatal("no committed transactions")
			}
			row := reconfigBenchRow{
				Name:         name,
				LiveTasks:    nTasks,
				Transactions: n,
				CallAvgNS:    callTotal.Nanoseconds() / int64(b.N),
				CallMaxNS:    callMax.Nanoseconds(),
				PauseAvgNS:   pauseTotal.Nanoseconds() / n,
				PauseMaxNS:   pauseMax.Nanoseconds(),
			}
			rowByName[name] = row
			b.ReportMetric(float64(row.CallAvgNS)/1e3, "admission-µs/op")
			b.ReportMetric(float64(row.PauseMaxNS)/1e3, "worst-pause-µs")
		})
	}
	rows := make([]reconfigBenchRow, 0, len(rowByName))
	for _, n := range []int{8, 64} {
		if row, ok := rowByName[fmt.Sprintf("live-tasks-%d", n)]; ok {
			rows = append(rows, row)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_reconfig.json", out, 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Scheduler tick scaling: O(jobs released), not O(tasks declared) ---

// schedTickRow is one BENCH_scale.json "sched_tick" record.
type schedTickRow struct {
	Name          string  `json:"name"`
	DeclaredTasks int     `json:"declared_tasks"`
	ActiveTasks   int     `json:"active_tasks"`
	Ticks         int64   `json:"ticks"`
	ReleasedJobs  int64   `json:"released_jobs"`
	NsPerTick     float64 `json:"ns_per_tick"`
	NsPerReleased float64 `json:"ns_per_released_job"`
}

// runSchedTick simulates a fixed horizon with `declared` tasks of which
// only `active` ever release (the rest sit one hour out on the release
// wheels) and returns host-time cost per scheduler tick. Before the wheel
// refactor the tick scanned every declared task; now cost must track the
// released-job count alone.
func runSchedTick(b *testing.B, declared, active int) schedTickRow {
	b.Helper()
	eng := sim.NewEngine(1)
	env, err := rt.NewSimEnv(eng, platform.Generic(5), nil)
	if err != nil {
		b.Fatal(err)
	}
	app, err := core.New(core.Config{
		Workers: 4, Priority: core.PriorityEDF,
		MaxTasks: declared, MaxPendingJobs: 1024,
	}, env)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < declared; i++ {
		d := core.TData{Name: fmt.Sprintf("t%d", i), Period: time.Millisecond}
		if i >= active {
			// Cold task: parked an hour out; a full-scan scheduler still
			// pays for it every tick, a wheel never touches it.
			d.Period = time.Hour
			d.ReleaseOffset = time.Hour
		}
		tid, err := app.TaskDecl(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			return x.Compute(500 * time.Nanosecond)
		}, nil, core.VSelect{}); err != nil {
			b.Fatal(err)
		}
	}
	const horizon = 500 * time.Millisecond
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			b.Errorf("start: %v", err)
			return
		}
		c.Sleep(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})
	t0 := time.Now()
	if err := eng.Run(sim.Infinity); err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(t0)
	ticks := int64(0)
	if st := app.Overheads().Kind(trace.OverheadSchedule); st != nil {
		ticks = st.Count()
	}
	released := app.Recorder().TotalJobs()
	if ticks == 0 || released == 0 {
		b.Fatalf("degenerate run: %d ticks, %d jobs", ticks, released)
	}
	return schedTickRow{
		DeclaredTasks: declared,
		ActiveTasks:   active,
		Ticks:         ticks,
		ReleasedJobs:  released,
		NsPerTick:     float64(elapsed.Nanoseconds()) / float64(ticks),
		NsPerReleased: float64(elapsed.Nanoseconds()) / float64(released),
	}
}

// BenchmarkSchedTick measures the scheduler tick across task-table sizes:
// with the released-job rate held constant, ns/tick must stay flat as the
// declared count grows 100x (the O(ready) hot path), and grow only with
// the released rate. Rows land in BENCH_scale.json for CI trend tracking.
func BenchmarkSchedTick(b *testing.B) {
	shapes := []struct {
		name             string
		declared, active int
	}{
		{"declared-100-active-50", 100, 50},
		{"declared-1k-active-50", 1000, 50},
		{"declared-10k-active-50", 10000, 50},
		{"declared-10k-active-500", 10000, 500},
	}
	rowByName := map[string]schedTickRow{}
	for _, tc := range shapes {
		b.Run(tc.name, func(b *testing.B) {
			var row schedTickRow
			for i := 0; i < b.N; i++ {
				row = runSchedTick(b, tc.declared, tc.active)
			}
			row.Name = tc.name
			rowByName[tc.name] = row
			b.ReportMetric(row.NsPerTick, "ns/tick")
			b.ReportMetric(float64(row.ReleasedJobs)/float64(row.Ticks), "released/tick")
		})
	}
	rows := make([]schedTickRow, 0, len(shapes))
	for _, tc := range shapes {
		if row, ok := rowByName[tc.name]; ok {
			rows = append(rows, row)
		}
	}
	if err := mergeBenchScale("sched_tick", rows); err != nil {
		b.Fatal(err)
	}
}

// mergeBenchScale read-modify-writes one top-level key of BENCH_scale.json,
// preserving sections other writers (yasmin-stress -out) maintain.
func mergeBenchScale(key string, payload any) error {
	const path = "BENCH_scale.json"
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing file is not a JSON object: %w", path, err)
		}
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	doc[key] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// --- Accelerator contention: PIP arbitration cost and pool scaling ---

// accelBenchRow is one BENCH_accel.json record.
type accelBenchRow struct {
	Name       string  `json:"name"`
	PoolSize   int     `json:"pool_size"`
	Contenders int     `json:"contenders"`
	Jobs       int64   `json:"jobs"`
	Misses     int64   `json:"misses"`
	Acquires   int64   `json:"acquires"`
	Parks      int64   `json:"parks"`
	Boosts     int64   `json:"boosts"`
	MaxWaitNS  int64   `json:"max_wait_ns"`
	ParkRatio  float64 `json:"park_ratio"` // parks / acquires
}

// runAccelContention simulates `contenders` accel-bound tasks hammering one
// pool of `poolSize` instances (plus one tight-deadline urgent task whose
// misses expose unbounded inversion) and returns the arbitration counters.
func runAccelContention(b *testing.B, poolSize, contenders int, seed int64) accelBenchRow {
	b.Helper()
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, platform.Generic(4), nil)
	if err != nil {
		b.Fatal(err)
	}
	app, err := core.New(core.Config{
		Workers: 2, Priority: core.PriorityEDF, Preemption: true, RecordAccel: true,
		MaxTasks: contenders + 1, MaxAccels: poolSize, MaxPendingJobs: 4 * (contenders + 1),
	}, env)
	if err != nil {
		b.Fatal(err)
	}
	gpu, err := app.HwAccelDeclPool("gpu", poolSize)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(name string, period, deadline, wcet, cs time.Duration) {
		tid, err := app.TaskDecl(core.TData{Name: name, Period: period, Deadline: deadline})
		if err != nil {
			b.Fatal(err)
		}
		pre := (wcet - cs) / 2
		vid, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(pre); err != nil {
				return err
			}
			if err := x.AccelSection(cs); err != nil {
				return err
			}
			return x.Compute(wcet - cs - pre)
		}, nil, core.VSelect{WCET: wcet, AccelCS: cs})
		if err != nil {
			b.Fatal(err)
		}
		if err := app.HwAccelUse(tid, vid, gpu); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < contenders; i++ {
		period := time.Duration(10+3*i) * time.Millisecond
		wcet := period / 12
		mk(fmt.Sprintf("load%d", i), period, 0, wcet, wcet/2)
	}
	mk("urgent", 5*time.Millisecond, 3*time.Millisecond, 400*time.Microsecond, 200*time.Microsecond)

	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			b.Errorf("start: %v", err)
			return
		}
		c.Sleep(time.Second)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Infinity); err != nil {
		b.Fatal(err)
	}
	row := accelBenchRow{
		PoolSize:   poolSize,
		Contenders: contenders,
		Jobs:       app.Recorder().TotalJobs(),
		Misses:     app.Recorder().TotalMisses(),
	}
	parkAt := map[string]time.Duration{}
	for _, e := range app.Recorder().AccelEvents() {
		key := fmt.Sprintf("%s#%d", e.Task, e.Job)
		switch e.Kind {
		case trace.AccelAcquire, trace.AccelGrant:
			row.Acquires++
			if at, ok := parkAt[key]; ok {
				if w := int64(e.At - at); w > row.MaxWaitNS {
					row.MaxWaitNS = w
				}
				delete(parkAt, key)
			}
		case trace.AccelPark:
			row.Parks++
			parkAt[key] = e.At
		case trace.AccelBoost:
			row.Boosts++
		}
	}
	if row.Acquires > 0 {
		row.ParkRatio = float64(row.Parks) / float64(row.Acquires)
	}
	return row
}

// BenchmarkAccelContention measures shared-accelerator arbitration across
// pool sizes: with the same contenders, a larger pool must cut parks and
// PIP boosts while the urgent task's misses stay at zero (bounded
// inversion). Rows land in BENCH_accel.json for CI trend tracking.
func BenchmarkAccelContention(b *testing.B) {
	shapes := []struct {
		name                 string
		poolSize, contenders int
	}{
		{"pool-1-contenders-4", 1, 4},
		{"pool-2-contenders-4", 2, 4},
		{"pool-2-contenders-8", 2, 8},
	}
	rowByName := map[string]accelBenchRow{}
	for _, tc := range shapes {
		b.Run(tc.name, func(b *testing.B) {
			var row accelBenchRow
			for i := 0; i < b.N; i++ {
				row = runAccelContention(b, tc.poolSize, tc.contenders, int64(i+1))
			}
			row.Name = tc.name
			rowByName[tc.name] = row
			b.ReportMetric(float64(row.Parks), "parks")
			b.ReportMetric(float64(row.Boosts), "pip-boosts")
			b.ReportMetric(float64(row.MaxWaitNS)/1e3, "max-wait-µs")
			b.ReportMetric(float64(row.Misses), "misses")
		})
	}
	rows := make([]accelBenchRow, 0, len(shapes))
	for _, tc := range shapes {
		if row, ok := rowByName[tc.name]; ok {
			rows = append(rows, row)
		}
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_accel.json", out, 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Telemetry export: batched vs unbatched sink throughput ---

// telemetryBenchRow is one BENCH_telemetry.json record.
type telemetryBenchRow struct {
	Name          string  `json:"name"`
	BatchSize     int     `json:"batch_size"`
	Records       int64   `json:"records"`
	NSPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// benchJobEvent returns a representative job event for export benchmarks.
func benchJobEvent(i int) telemetry.Event {
	return telemetry.Event{Kind: telemetry.KindJob, Seq: uint64(i + 1), Job: trace.JobRecord{
		Task: "bench-task-7", TaskID: 7, Job: int64(i), Version: 1, Core: 2,
		Release: 10 * time.Millisecond, Start: 11 * time.Millisecond,
		Finish: 12 * time.Millisecond, Deadline: 20 * time.Millisecond,
	}}
}

// runTelemetrySinkPaired measures the exporter's drain path (encode +
// write), isolated from producer scheduling, unbatched against batched.
// Both configurations run as interleaved pairs of equal rounds — unbatched
// round, batched round, repeat — so drift in filesystem writeback or
// scheduler state hits both sides alike and cancels out of the ratio. The
// speedup is the median of the per-pair ratios (robust against a stalled
// round); each row reports its fastest round as steady-state throughput.
func runTelemetrySinkPaired(b *testing.B, batchSize int) (un, ba telemetryBenchRow, speedup float64) {
	b.Helper()
	dir := b.TempDir()
	unSink, err := telemetry.NewFileSink(dir + "/unbatched.jsonl")
	if err != nil {
		b.Fatal(err)
	}
	baSink, err := telemetry.NewFileSink(dir + "/batched.jsonl")
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]telemetry.Event, batchSize)
	for i := range batch {
		batch[i] = benchJobEvent(i)
	}
	round := func(sink *telemetry.FileSink, n, size int) time.Duration {
		t0 := time.Now()
		for w := 0; w < n; w += size {
			chunk := batch[:min(size, n-w)]
			if err := sink.WriteBatch(chunk); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(t0)
	}
	const pairs = 7
	per := b.N / pairs
	if per < batchSize {
		per = b.N
	}
	ratios := make([]float64, 0, pairs)
	var bestUn, bestBa time.Duration
	b.ResetTimer()
	for done := 0; done < b.N; done += per {
		n := min(per, b.N-done)
		// Untimed breather: let the filesystem flusher drain dirty pages so
		// each round starts from comparable state instead of paying for the
		// previous round's writeback.
		b.StopTimer()
		time.Sleep(2 * time.Millisecond)
		b.StartTimer()
		tu := round(unSink, n, 1)
		tb := round(baSink, n, batchSize)
		if n < per || tu <= 0 || tb <= 0 {
			continue // short or unmeasurable tail round
		}
		ratios = append(ratios, float64(tu)/float64(tb))
		if bestUn == 0 || tu < bestUn {
			bestUn = tu
		}
		if bestBa == 0 || tb < bestBa {
			bestBa = tb
		}
	}
	b.StopTimer()
	if err := unSink.Finish(telemetry.Stats{}); err != nil {
		b.Fatal(err)
	}
	if err := baSink.Finish(telemetry.Stats{}); err != nil {
		b.Fatal(err)
	}
	un = telemetryBenchRow{BatchSize: 1, Records: int64(b.N)}
	ba = telemetryBenchRow{BatchSize: batchSize, Records: int64(b.N)}
	if bestUn > 0 && bestBa > 0 {
		un.NSPerRecord = float64(bestUn.Nanoseconds()) / float64(per)
		un.RecordsPerSec = float64(per) / bestUn.Seconds()
		ba.NSPerRecord = float64(bestBa.Nanoseconds()) / float64(per)
		ba.RecordsPerSec = float64(per) / bestBa.Seconds()
	}
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		speedup = ratios[len(ratios)/2]
	}
	return un, ba, speedup
}

// BenchmarkTelemetryExport measures the streaming export pipeline: the
// record path itself (ring publish, no sink I/O — must be allocation-free),
// the full pipeline end to end (publish through Close, drain and trailer
// included), and the exporter drain path unbatched (one file write per
// record) vs batched. Rows and the batched/unbatched speedup land in
// BENCH_telemetry.json; CI tracks where batching stops paying for itself.
func BenchmarkTelemetryExport(b *testing.B) {
	rows := map[string]telemetryBenchRow{}

	// The paired sink comparison runs first: the other sub-benchmarks write
	// tens of megabytes, and their pending writeback would skew it.
	var speedup float64
	b.Run("sink-paired", func(b *testing.B) {
		un, ba, sp := runTelemetrySinkPaired(b, 512)
		rows["sink-unbatched"], rows["sink-batched-512"], speedup = un, ba, sp
	})

	b.Run("record-path", func(b *testing.B) {
		p, err := telemetry.New(telemetry.NewDiscardSink(), telemetry.Options{RingCapacity: 1 << 16})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		ev := benchJobEvent(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Job.Job = int64(i)
			p.PublishWait(ev)
		}
		b.StopTimer()
		rows["record-path"] = telemetryBenchRow{
			Records:       int64(b.N),
			NSPerRecord:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			RecordsPerSec: float64(b.N) / b.Elapsed().Seconds(),
		}
	})
	b.Run("pipeline-batched-512", func(b *testing.B) {
		sink, err := telemetry.NewFileSink(b.TempDir() + "/bench.jsonl")
		if err != nil {
			b.Fatal(err)
		}
		p, err := telemetry.New(sink, telemetry.Options{BatchSize: 512})
		if err != nil {
			b.Fatal(err)
		}
		ev := benchJobEvent(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Job.Job = int64(i)
			p.PublishWait(ev)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if st := p.Stats(); st.Dropped != 0 || st.Exported != uint64(b.N) {
			b.Fatalf("exporter lost records: %+v with N=%d", st, b.N)
		}
		rows["pipeline-batched-512"] = telemetryBenchRow{
			BatchSize:     512,
			Records:       int64(b.N),
			NSPerRecord:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			RecordsPerSec: float64(b.N) / b.Elapsed().Seconds(),
		}
	})
	out := struct {
		Rows    []telemetryBenchRow `json:"rows"`
		Speedup float64             `json:"speedup_batched_vs_unbatched"`
	}{Speedup: speedup}
	for _, name := range []string{"record-path", "pipeline-batched-512", "sink-unbatched", "sink-batched-512"} {
		if row, ok := rows[name]; ok {
			row.Name = name
			out.Rows = append(out.Rows, row)
		}
	}
	un, ba := rows["sink-unbatched"], rows["sink-batched-512"]
	if un.RecordsPerSec > 0 && ba.RecordsPerSec > 0 {
		b.Logf("batched %.0f rec/s vs unbatched %.0f rec/s: %.1fx (median of paired rounds)", ba.RecordsPerSec, un.RecordsPerSec, speedup)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_telemetry.json", data, 0o644); err != nil {
		b.Fatal(err)
	}
}

// --- Micro-benchmarks of the scheduling fast path (real time, not
// simulated: these measure the Go implementation itself) ---

// benchApp builds a small app on the wall-clock env for microbenches.
func benchApp(b *testing.B, cfg core.Config) (*core.App, *rt.OSEnv) {
	b.Helper()
	env := rt.NewOSEnv()
	env.Spin = false
	app, err := core.New(cfg, env)
	if err != nil {
		b.Fatal(err)
	}
	return app, env
}

func BenchmarkSimEngineStep(b *testing.B) {
	eng := sim.NewEngine(1)
	eng.Spawn("ticker", func(p *sim.Proc) {
		for {
			if intr, _ := p.Sleep(time.Microsecond); intr {
				return
			}
		}
	})
	b.ResetTimer()
	if err := eng.Run(sim.Time(time.Duration(b.N) * time.Microsecond)); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMiddlewareJobRoundTrip(b *testing.B) {
	// Full release -> dispatch -> fiber -> completion round trip in virtual
	// time, measuring real host time per simulated job.
	eng := sim.NewEngine(1)
	env, err := rt.NewSimEnv(eng, platform.Generic(4), nil)
	if err != nil {
		b.Fatal(err)
	}
	app, err := core.New(core.Config{Workers: 2, MaxPendingJobs: 64}, env)
	if err != nil {
		b.Fatal(err)
	}
	tid, err := app.TaskDecl(core.TData{Name: "t", Period: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
		return x.Compute(100 * time.Microsecond)
	}, nil, core.VSelect{}); err != nil {
		b.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.Sleep(time.Duration(b.N) * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	b.ResetTimer()
	if err := eng.Run(sim.Infinity); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if jobs := app.Recorder().TotalJobs(); jobs < int64(b.N) {
		b.Fatalf("only %d jobs for N=%d", jobs, b.N)
	}
}

func BenchmarkDRSGeneration(b *testing.B) {
	cfg := taskset.DRSConfig{N: 100, TotalUtilization: 1.5}
	rng := sim.NewEngine(1).Rand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := taskset.Generate(rng, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationSchedulerPeriod compares the paper's GCD-periodic
// scheduler activation against a denser fixed activation grid.
func BenchmarkAblationSchedulerPeriod(b *testing.B) {
	for _, tc := range []struct {
		name   string
		period time.Duration
	}{
		{"gcd-derived", 0},
		{"fixed-100us", 100 * time.Microsecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ovh, err := runAblation(int64(i+1), func(cfg *core.Config) {
					cfg.SchedulerPeriod = tc.period
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ovh.Microseconds()), "sched-avg-µs")
			}
		})
	}
}

// BenchmarkAblationLocks compares POSIX-style and lock-free queue locking.
func BenchmarkAblationLocks(b *testing.B) {
	for _, tc := range []struct {
		name string
		lock core.LockChoice
	}{
		{"posix", core.LockPOSIX},
		{"lockfree", core.LockFree},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ovh, err := runAblation(int64(i+1), func(cfg *core.Config) {
					cfg.Lock = tc.lock
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ovh.Microseconds()), "sched-avg-µs")
			}
		})
	}
}

// BenchmarkAblationWaitStrategy compares sleeping and spinning idle workers.
func BenchmarkAblationWaitStrategy(b *testing.B) {
	for _, tc := range []struct {
		name string
		wait core.WaitStrategy
	}{
		{"sleep", core.WaitSleep},
		{"spin", core.WaitSpin},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ovh, err := runAblation(int64(i+1), func(cfg *core.Config) {
					cfg.Wait = tc.wait
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ovh.Microseconds()), "sched-avg-µs")
			}
		})
	}
}

// runAblation executes a fixed synthetic workload under a tweaked config and
// returns the mean scheduling overhead.
func runAblation(seed int64, tweak func(*core.Config)) (time.Duration, error) {
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		return 0, err
	}
	cfg := core.Config{
		Workers:       2,
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Priority:      core.PriorityEDF,
		Preemption:    true,
		MaxTasks:      24,
	}
	tweak(&cfg)
	app, err := core.New(cfg, env)
	if err != nil {
		return 0, err
	}
	set, err := taskset.Generate(sim.NewEngine(seed).Rand(), taskset.DRSConfig{
		N: 24, TotalUtilization: 1.2,
		PeriodMin: 10 * time.Millisecond, PeriodMax: 50 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	for i := range set.Tasks {
		tk := &set.Tasks[i]
		tid, err := app.TaskDecl(core.TData{Name: tk.Name, Period: tk.Period})
		if err != nil {
			return 0, err
		}
		w := tk.WCET
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			return x.Compute(w)
		}, nil, core.VSelect{}); err != nil {
			return 0, err
		}
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.Sleep(500 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(5 * time.Second)); err != nil {
		return 0, err
	}
	return app.Overheads().Total().Mean(), nil
}

// BenchmarkAblationAsyncAccel measures the paper's future-work extension:
// asynchronous accelerator sections versus the synchronous limitation, on
// the SAR-like single-worker contention scenario.
func BenchmarkAblationAsyncAccel(b *testing.B) {
	for _, tc := range []struct {
		name  string
		async bool
	}{
		{"sync-paper-limitation", false},
		{"async-extension", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				miss, err := runAsyncAblation(int64(i+1), tc.async)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(miss, "cpu-task-miss-%")
			}
		})
	}
}

func runAsyncAblation(seed int64, async bool) (float64, error) {
	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, platform.GenericWithGPU(2), nil)
	if err != nil {
		return 0, err
	}
	app, err := core.New(core.Config{
		Workers: 1, Preemption: true, AsyncAccel: async,
	}, env)
	if err != nil {
		return 0, err
	}
	gpu, err := app.HwAccelDecl("gpu0")
	if err != nil {
		return 0, err
	}
	gt, err := app.TaskDecl(core.TData{Name: "gputask", Period: 100 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	gv, err := app.VersionDecl(gt, func(x *core.ExecCtx, _ any) error {
		if err := x.Compute(time.Millisecond); err != nil {
			return err
		}
		if err := x.AccelSection(30 * time.Millisecond); err != nil {
			return err
		}
		return x.Compute(time.Millisecond)
	}, nil, core.VSelect{})
	if err != nil {
		return 0, err
	}
	if err := app.HwAccelUse(gt, gv, gpu); err != nil {
		return 0, err
	}
	ct, err := app.TaskDecl(core.TData{
		Name: "cputask", Period: 100 * time.Millisecond,
		Deadline: 20 * time.Millisecond, ReleaseOffset: 2 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	if _, err := app.VersionDecl(ct, func(x *core.ExecCtx, _ any) error {
		return x.Compute(5 * time.Millisecond)
	}, nil, core.VSelect{}); err != nil {
		return 0, err
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.Sleep(time.Second)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(5 * time.Second)); err != nil {
		return 0, err
	}
	st := app.Recorder().Task("cputask")
	if st == nil || st.Jobs == 0 {
		return 0, nil
	}
	return 100 * float64(st.Misses) / float64(st.Jobs), nil
}

// BenchmarkCyclictestSingleKernel measures one kernel model end to end.
func BenchmarkCyclictestSingleKernel(b *testing.B) {
	load := stress.PaperConfig().Load()
	opts := cyclictest.Options{Threads: 2, Interval: 10 * time.Millisecond, Loops: 200}
	for i := 0; i < b.N; i++ {
		if _, err := cyclictest.RunNative(int64(i+1), platform.OdroidXU4(),
			&kernel.PreemptRT{Load: load}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOSEnvDispatchLatency measures the wall-clock middleware's
// release-to-start latency on the host (the Go analogue of Table 2's YASMIN
// rows; expect GC/scheduler noise — the published repro caveat).
func BenchmarkOSEnvDispatchLatency(b *testing.B) {
	app, env := benchApp(b, core.Config{Workers: 2})
	tid, err := app.TaskDecl(core.TData{Name: "t", Period: 5 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
		return nil
	}, nil, core.VSelect{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	env.RunMain(func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			return
		}
		c.Sleep(time.Duration(b.N) * 5 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	b.StopTimer()
	if st := app.Recorder().Task("t"); st != nil {
		_, max, avg := st.Response.Summary()
		b.ReportMetric(float64(avg.Microseconds()), "resp-avg-µs")
		b.ReportMetric(float64(max.Microseconds()), "resp-max-µs")
	}
	env.Wait()
}
