module github.com/yasmin-rt/yasmin

go 1.24
