// Command yasmin-overhead regenerates Figure 2 of the paper: average and
// maximum scheduling overhead of YASMIN versus the Mollison & Anderson
// userspace G-EDF library, by task count and by utilisation, on 2 and 3 big
// cores of a simulated Odroid-XU4.
//
// Usage:
//
//	yasmin-overhead [-quick] [-full] [-seed N] [-horizon 1s]
//
// -quick runs a reduced grid (seconds); the default grid matches the
// paper's axes with a coarsened utilisation step; -full sweeps the complete
// 1360-set grid (several minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced test grid")
	full := flag.Bool("full", false, "run the complete 1360-set grid of the paper")
	seed := flag.Int64("seed", 1, "base random seed")
	horizon := flag.Duration("horizon", time.Second, "simulated horizon per task set")
	flag.Parse()

	cfg := experiments.DefaultFig2Config()
	if *quick {
		cfg = experiments.QuickFig2Config()
	}
	if *full {
		cfg = experiments.DefaultFig2Config()
		// The paper's 1360 sets: 2 core counts x 5 sets x 8 task counts x
		// 17 utilisation steps.
		cfg.TaskCounts = []int{20, 35, 50, 65, 80, 95, 110, 120}
		cfg.Utils = nil
		for u := 0.2; u <= 2.001; u += 0.1125 {
			cfg.Utils = append(cfg.Utils, float64(int(u*1000))/1000)
		}
	}
	cfg.Seed = *seed
	cfg.Horizon = *horizon

	fmt.Printf("# Fig. 2 — scheduling overhead, YASMIN vs Mollison & Anderson\n")
	fmt.Printf("# grid: tasks=%v utils=%v sets=%d cores=%v horizon=%v\n\n",
		cfg.TaskCounts, cfg.Utils, cfg.SetsPer, cfg.CoreCounts, cfg.Horizon)
	rows, err := experiments.Fig2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-overhead:", err)
		os.Exit(1)
	}
	if err := experiments.PrintFig2(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-overhead:", err)
		os.Exit(1)
	}
}
