// Command yasmin-taskgen generates synthetic real-time task sets with the
// Dirichlet-Rescale (DRS) utilisation sampler the paper's evaluation uses
// [Griffin, Bate, Davis — RTSS 2020], and prints them as JSON.
//
// Usage:
//
//	yasmin-taskgen [-n 20] [-u 1.0] [-seed 1] [-pmin 10ms] [-pmax 1s]
//	               [-dfactor 1.0] [-umax 1.0]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func main() {
	n := flag.Int("n", 20, "number of tasks")
	u := flag.Float64("u", 1.0, "total utilisation")
	seed := flag.Int64("seed", 1, "random seed")
	pmin := flag.Duration("pmin", 10*time.Millisecond, "minimum period")
	pmax := flag.Duration("pmax", time.Second, "maximum period")
	dfactor := flag.Float64("dfactor", 1.0, "deadline factor: 1 implicit, <1 constrained")
	umax := flag.Float64("umax", 1.0, "per-task utilisation cap")
	flag.Parse()

	cfg := taskset.DRSConfig{
		N:                *n,
		TotalUtilization: *u,
		MaxUtilization:   *umax,
		PeriodMin:        *pmin,
		PeriodMax:        *pmax,
		DeadlineFactor:   *dfactor,
	}
	set, err := taskset.Generate(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen:", err)
		os.Exit(1)
	}
	if err := set.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# %d tasks, U=%.3f, hyperperiod=%v, GCD=%v\n",
		set.Len(), set.TotalUtilization(), set.Hyperperiod(), set.PeriodGCD())
}
