// Command yasmin-taskgen generates synthetic real-time task sets with the
// Dirichlet-Rescale (DRS) utilisation sampler the paper's evaluation uses
// [Griffin, Bate, Davis — RTSS 2020], and prints them as JSON.
//
// By default it emits a flat task set; with -app it emits a full
// application spec (internal/spec) instead, directly loadable by
// `yasmin-sim -app`. With -chain L the generated tasks are additionally
// grouped into processing chains of length L: the first task of each chain
// keeps its period (the graph root), the rest become data-activated nodes
// connected by FIFO channels — synthetic DAG workloads for scenario
// exploration.
//
// Usage:
//
//	yasmin-taskgen [-n 20] [-u 1.0] [-seed 1] [-pmin 10ms] [-pmax 1s]
//	               [-dfactor 1.0] [-umax 1.0] [-app] [-chain 4]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func main() {
	n := flag.Int("n", 20, "number of tasks")
	u := flag.Float64("u", 1.0, "total utilisation")
	seed := flag.Int64("seed", 1, "random seed")
	pmin := flag.Duration("pmin", 10*time.Millisecond, "minimum period")
	pmax := flag.Duration("pmax", time.Second, "maximum period")
	dfactor := flag.Float64("dfactor", 1.0, "deadline factor: 1 implicit, <1 constrained")
	umax := flag.Float64("umax", 1.0, "per-task utilisation cap")
	appOut := flag.Bool("app", false, "emit an application spec instead of a flat task set")
	chain := flag.Int("chain", 1, "group tasks into chains of this length (implies -app)")
	flag.Parse()

	cfg := taskset.DRSConfig{
		N:                *n,
		TotalUtilization: *u,
		MaxUtilization:   *umax,
		PeriodMin:        *pmin,
		PeriodMax:        *pmax,
		DeadlineFactor:   *dfactor,
	}
	set, err := taskset.Generate(rand.New(rand.NewSource(*seed)), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen:", err)
		os.Exit(1)
	}
	if *chain < 1 {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen: -chain must be >= 1")
		os.Exit(1)
	}
	if !*appOut && *chain == 1 {
		if err := set.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "yasmin-taskgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# %d tasks, U=%.3f, hyperperiod=%v, GCD=%v\n",
			set.Len(), set.TotalUtilization(), set.Hyperperiod(), set.PeriodGCD())
		return
	}

	s := spec.FromTaskSet(set)
	s.Name = fmt.Sprintf("drs-n%d-u%.2f-seed%d", *n, *u, *seed)
	if *chain > 1 {
		chainify(s, *chain)
	}
	if err := s.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen: generated spec invalid:", err)
		os.Exit(1)
	}
	if err := s.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-taskgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# spec %q: %d tasks, %d channels, U=%.3f\n",
		s.Name, len(s.Tasks), len(s.Channels), set.TotalUtilization())
}

// chainify turns consecutive groups of L tasks into linear processing
// chains: the first task of each group stays a periodic root, the rest lose
// their period/offset (data-activated, firing at the root's rate) and are
// connected by FIFO channels. Each member's WCET is rescaled to preserve
// its DRS-sampled utilisation under the inherited root period, keeping the
// set's total utilisation (and hence partitionability) meaningful.
func chainify(s *spec.Spec, l int) {
	var root *spec.TaskSpec
	for i := range s.Tasks {
		cur := &s.Tasks[i]
		if i%l == 0 {
			root = cur // chain root keeps its period
			continue
		}
		u := float64(cur.Versions[0].WCET) / float64(cur.Period)
		cur.Versions[0].WCET = spec.Duration(u * float64(root.Period))
		cur.Period = 0
		cur.Offset = 0
		cur.Deadline = 0 // inherit the root deadline at resolve
		prev := &s.Tasks[i-1]
		s.Channels = append(s.Channels, spec.ChannelSpec{
			Name:     prev.Name + "->" + cur.Name,
			Capacity: 8, // headroom under backlog before the FIFO overflows
			Src:      prev.Name,
			Dst:      cur.Name,
		})
	}
	s.Name += fmt.Sprintf("-chain%d", l)
}
