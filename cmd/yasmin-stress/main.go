// Command yasmin-stress drives a declarative stress scenario through the
// middleware on the deterministic simulation backend and validates runtime
// invariants (no lost topic entries, per-publisher FIFO,
// drain-before-retire, admission monotonicity) while it runs.
//
// A scenario file (YAML or JSON; see the scenarios/ directory and the
// "Stress & scale" section of the README for the schema) declares task
// generator groups, pub-sub topic shapes, reconfiguration churn and failure
// injection:
//
//	yasmin-stress -scenario scenarios/smoke.yaml
//	yasmin-stress -scenario scenarios/scale10k.yaml -out BENCH_scale.json
//
// The exit status is non-zero when the checker finds violations, making the
// command usable as a CI gate. With -out, the report is merged into the
// given JSON file under the "scenarios" key (the same file
// BenchmarkSchedTick writes its tick-scaling rows into).
//
// With -export FILE the run streams every trace record (jobs, reconfig
// epochs, retirements, accel events) through the telemetry pipeline into a
// JSONL file (docs/TRACE.md), then immediately replays the file and re-runs
// the scenario invariants on it — proving the export is lossless. -replay
// FILE verifies a previously exported stream without running anything:
//
//	yasmin-stress -scenario scenarios/smoke.yaml -export smoke.jsonl
//	yasmin-stress -replay smoke.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file (.yaml/.yml/.json); required unless -replay")
		seed         = flag.Int64("seed", -1, "override the scenario seed (-1 keeps the file's)")
		duration     = flag.Duration("duration", 0, "override the scenario duration (0 keeps the file's)")
		out          = flag.String("out", "", "merge the JSON report into this file under the \"scenarios\" key")
		quiet        = flag.Bool("quiet", false, "suppress the human-readable summary")
		export       = flag.String("export", "", "stream the run's trace records into this JSONL file, then verify it by replay")
		replay       = flag.String("replay", "", "verify a previously exported JSONL stream and exit (no run; -scenario optional, supplies accel_wait_bound)")
	)
	flag.Parse()

	var sc *scenario.Scenario
	if *scenarioPath != "" {
		var err error
		sc, err = scenario.LoadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(2)
		}
		if *seed >= 0 {
			sc.Seed = *seed
		}
		if *duration > 0 {
			sc.Duration = spec.Duration(*duration)
		}
	}

	if *replay != "" {
		var bound time.Duration
		if sc != nil {
			bound = sc.AccelWaitBound.Std()
		}
		os.Exit(replayVerify(*replay, bound, *quiet))
	}
	if sc == nil {
		fmt.Fprintln(os.Stderr, "yasmin-stress: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}

	var opts scenario.RunOpts
	var pipe *telemetry.Pipeline
	if *export != "" {
		sink, err := telemetry.NewFileSink(*export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(1)
		}
		pipe, err = telemetry.New(sink, telemetry.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(1)
		}
		// The sim producer can outrun the disk; block for ring space rather
		// than drop so the export is lossless by construction.
		opts.Telemetry = pipe.Blocking()
	}

	rep, err := scenario.RunWith(sc, opts)
	if pipe != nil {
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: export: %v\n", cerr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		printSummary(rep)
	}
	if *out != "" {
		if err := mergeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(1)
		}
	}
	status := 0
	if pipe != nil {
		st := pipe.Stats()
		if !*quiet {
			fmt.Printf("  export     %s: %d records in %d batches, %d dropped\n",
				*export, st.Exported, st.Batches, st.Dropped)
		}
		if rc := exportVerify(*export, rep, sc.AccelWaitBound.Std(), *quiet); rc != 0 {
			status = rc
		}
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %d invariant violations\n", len(rep.Violations))
		status = 1
	}
	os.Exit(status)
}

// replayVerify reloads an exported stream, re-runs the scenario invariants
// on it and reports transport losslessness; 0 = clean.
func replayVerify(path string, bound time.Duration, quiet bool) int {
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		return 2
	}
	viol := scenario.CheckStream(st, scenario.StreamCheckOpts{AccelWaitBound: bound})
	lost := st.Lost()
	if !quiet {
		fmt.Printf("replay %s\n", path)
		fmt.Printf("  stream     %d events: %d jobs, %d reconfigs, %d retires, %d accel\n",
			len(st.Events), len(st.Jobs), len(st.Reconfigs), len(st.Retires), len(st.Accels))
		if st.Summary != nil {
			fmt.Printf("  trailer    published=%d exported=%d dropped=%d batches=%d\n",
				st.Summary.Published, st.Summary.Exported, st.Summary.Dropped, st.Summary.Batches)
		}
		fmt.Printf("  lost       %d records\n", lost)
	}
	if len(viol) > 0 || lost > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: replay %s: %d lost records, %d violations\n", path, lost, len(viol))
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "    - %s\n", v)
		}
		return 1
	}
	if !quiet {
		fmt.Printf("  replay     PASS (0 violations, 0 lost records)\n")
	}
	return 0
}

// exportVerify replays the just-written export and additionally cross-checks
// the stream's record counts against the live run's report — the end-to-end
// proof that everything the recorder saw reached the file.
func exportVerify(path string, rep *scenario.Report, bound time.Duration, quiet bool) int {
	rc := replayVerify(path, bound, quiet)
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		return 2
	}
	mismatch := func(what string, got, want int64) {
		fmt.Fprintf(os.Stderr, "yasmin-stress: export %s: stream has %d %s, live run recorded %d\n",
			path, got, what, want)
		rc = 1
	}
	if int64(len(st.Jobs)) != rep.Jobs {
		mismatch("jobs", int64(len(st.Jobs)), rep.Jobs)
	}
	if len(st.Reconfigs) != rep.Epochs {
		mismatch("reconfig epochs", int64(len(st.Reconfigs)), int64(rep.Epochs))
	}
	if len(st.Retires) != rep.Retires {
		mismatch("retirements", int64(len(st.Retires)), int64(rep.Retires))
	}
	return rc
}

func printSummary(rep *scenario.Report) {
	fmt.Printf("scenario %s (seed %d)\n", rep.Scenario, rep.Seed)
	fmt.Printf("  tasks      %d declared (%d slots provisioned), %d workers\n", rep.Tasks, rep.PeakTasks, rep.Workers)
	fmt.Printf("  simulated  %v in %v wall (%d engine steps)\n",
		time.Duration(rep.SimDurationNS), time.Duration(rep.WallNS).Round(time.Millisecond), rep.EngineSteps)
	fmt.Printf("  jobs       %d (%.0f jobs/wall-second), %d deadline misses, %d overruns\n",
		rep.Jobs, rep.JobsPerWallSec, rep.Misses, rep.Overruns)
	fmt.Printf("  data plane %d published, %d delivered\n", rep.Published, rep.Delivered)
	fmt.Printf("  reconfig   %d epochs, %d retirements, %d admission rejections\n",
		rep.Epochs, rep.Retires, rep.Rejections)
	if rep.AccelAcquires > 0 || rep.AccelParks > 0 {
		fmt.Printf("  accel      %d acquires, %d parks, %d PIP boosts, max wait %v\n",
			rep.AccelAcquires, rep.AccelParks, rep.AccelBoosts,
			time.Duration(rep.AccelMaxWaitNS).Round(time.Microsecond))
	}
	if len(rep.Violations) == 0 {
		fmt.Printf("  checker    PASS (0 violations)\n")
	} else {
		fmt.Printf("  checker    FAIL (%d violations)\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("    - %s\n", v)
		}
	}
}

// mergeReport read-modify-writes the report into path under
// "scenarios".<name>, preserving whatever else (e.g. BenchmarkSchedTick's
// "sched_tick" rows) the file holds.
func mergeReport(path string, rep *scenario.Report) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing file is not a JSON object: %w", path, err)
		}
	}
	scenarios := map[string]json.RawMessage{}
	if raw, ok := doc["scenarios"]; ok {
		if err := json.Unmarshal(raw, &scenarios); err != nil {
			return fmt.Errorf("%s: \"scenarios\" key: %w", path, err)
		}
	}
	repRaw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	scenarios[rep.Scenario] = repRaw
	scRaw, err := json.Marshal(scenarios)
	if err != nil {
		return err
	}
	doc["scenarios"] = scRaw
	outData, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outData, '\n'), 0o644)
}
