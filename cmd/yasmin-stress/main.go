// Command yasmin-stress drives a declarative stress scenario through the
// middleware on the deterministic simulation backend and validates runtime
// invariants (no lost topic entries, per-publisher FIFO,
// drain-before-retire, admission monotonicity) while it runs.
//
// A scenario file (YAML or JSON; see the scenarios/ directory and the
// "Stress & scale" section of the README for the schema) declares task
// generator groups, pub-sub topic shapes, reconfiguration churn and failure
// injection:
//
//	yasmin-stress -scenario scenarios/smoke.yaml
//	yasmin-stress -scenario scenarios/scale10k.yaml -out BENCH_scale.json
//
// The exit status is non-zero when the checker finds violations, making the
// command usable as a CI gate. With -out, the report is merged into the
// given JSON file under the "scenarios" key (the same file
// BenchmarkSchedTick writes its tick-scaling rows into).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file (.yaml/.yml/.json); required")
		seed         = flag.Int64("seed", -1, "override the scenario seed (-1 keeps the file's)")
		duration     = flag.Duration("duration", 0, "override the scenario duration (0 keeps the file's)")
		out          = flag.String("out", "", "merge the JSON report into this file under the \"scenarios\" key")
		quiet        = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "yasmin-stress: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}
	sc, err := scenario.LoadFile(*scenarioPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		os.Exit(2)
	}
	if *seed >= 0 {
		sc.Seed = *seed
	}
	if *duration > 0 {
		sc.Duration = spec.Duration(*duration)
	}

	rep, err := scenario.Run(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		printSummary(rep)
	}
	if *out != "" {
		if err := mergeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(1)
		}
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %d invariant violations\n", len(rep.Violations))
		os.Exit(1)
	}
}

func printSummary(rep *scenario.Report) {
	fmt.Printf("scenario %s (seed %d)\n", rep.Scenario, rep.Seed)
	fmt.Printf("  tasks      %d declared (%d slots provisioned), %d workers\n", rep.Tasks, rep.PeakTasks, rep.Workers)
	fmt.Printf("  simulated  %v in %v wall (%d engine steps)\n",
		time.Duration(rep.SimDurationNS), time.Duration(rep.WallNS).Round(time.Millisecond), rep.EngineSteps)
	fmt.Printf("  jobs       %d (%.0f jobs/wall-second), %d deadline misses, %d overruns\n",
		rep.Jobs, rep.JobsPerWallSec, rep.Misses, rep.Overruns)
	fmt.Printf("  data plane %d published, %d delivered\n", rep.Published, rep.Delivered)
	fmt.Printf("  reconfig   %d epochs, %d retirements, %d admission rejections\n",
		rep.Epochs, rep.Retires, rep.Rejections)
	if rep.AccelAcquires > 0 || rep.AccelParks > 0 {
		fmt.Printf("  accel      %d acquires, %d parks, %d PIP boosts, max wait %v\n",
			rep.AccelAcquires, rep.AccelParks, rep.AccelBoosts,
			time.Duration(rep.AccelMaxWaitNS).Round(time.Microsecond))
	}
	if len(rep.Violations) == 0 {
		fmt.Printf("  checker    PASS (0 violations)\n")
	} else {
		fmt.Printf("  checker    FAIL (%d violations)\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("    - %s\n", v)
		}
	}
}

// mergeReport read-modify-writes the report into path under
// "scenarios".<name>, preserving whatever else (e.g. BenchmarkSchedTick's
// "sched_tick" rows) the file holds.
func mergeReport(path string, rep *scenario.Report) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing file is not a JSON object: %w", path, err)
		}
	}
	scenarios := map[string]json.RawMessage{}
	if raw, ok := doc["scenarios"]; ok {
		if err := json.Unmarshal(raw, &scenarios); err != nil {
			return fmt.Errorf("%s: \"scenarios\" key: %w", path, err)
		}
	}
	repRaw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	scenarios[rep.Scenario] = repRaw
	scRaw, err := json.Marshal(scenarios)
	if err != nil {
		return err
	}
	doc["scenarios"] = scRaw
	outData, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outData, '\n'), 0o644)
}
