// Command yasmin-stress drives a declarative stress scenario through the
// middleware on the deterministic simulation backend and validates runtime
// invariants (no lost topic entries, per-publisher FIFO,
// drain-before-retire, admission monotonicity) while it runs.
//
// A scenario file (YAML or JSON; see the scenarios/ directory and the
// "Stress & scale" section of the README for the schema) declares task
// generator groups, pub-sub topic shapes, reconfiguration churn and failure
// injection:
//
//	yasmin-stress -scenario scenarios/smoke.yaml
//	yasmin-stress -scenario scenarios/scale10k.yaml -out BENCH_scale.json
//
// The exit status is non-zero when the checker finds violations, making the
// command usable as a CI gate. With -out, the report is merged into the
// given JSON file under the "scenarios" key (the same file
// BenchmarkSchedTick writes its tick-scaling rows into).
//
// With -export FILE the run streams every trace record (jobs, reconfig
// epochs, retirements, accel events) through the telemetry pipeline into a
// JSONL file (docs/TRACE.md), then immediately replays the file and re-runs
// the scenario invariants on it — proving the export is lossless. -replay
// FILE verifies a previously exported stream without running anything:
//
//	yasmin-stress -scenario scenarios/smoke.yaml -export smoke.jsonl
//	yasmin-stress -replay smoke.jsonl
//
// Cluster scenarios (a "nodes:" section) run one node per export stream:
// -export base.jsonl writes base.node0.jsonl, base.node1.jsonl, ... — one
// file per node — and reconciles them offline (frame accounting closes,
// epoch histories agree, per-publisher FIFO holds across the wire). -replay
// accepts the same comma-separated list to re-verify later:
//
//	yasmin-stress -scenario scenarios/cluster.yaml -export cl.jsonl
//	yasmin-stress -replay cl.node0.jsonl,cl.node1.jsonl,cl.node2.jsonl
//
// -fuzz N swaps the scenario file for the property-based generator
// (internal/scenario/fuzz): N seeded random-but-valid scenarios run through
// the live checker, failing ones are minimised with -shrink and written as
// YAML reproducers, and -diff additionally executes every single-node
// scenario on the wall-clock OS backend and diffs the checker-visible
// behaviour. Output is byte-deterministic for a fixed -seed (without -diff),
// so CI pins generator determinism by comparing two runs:
//
//	yasmin-stress -fuzz 50 -seed 1 -shrink
//	yasmin-stress -fuzz 20 -seed 1 -diff
//
// -corpus DIR replays every scenario file in DIR (the committed regression
// corpus lives in scenarios/corpus/) through the simulation backend and the
// live checker; with -diff each single-node file also runs differentially:
//
//	yasmin-stress -corpus scenarios/corpus
//
// -ratchet BASE is the CI perf gate: it compares the "sched_tick"
// ns-per-released-job rows of the current benchmark file (-out, default
// BENCH_scale.json) against the committed baseline BASE and exits non-zero
// when any shape regressed beyond -ratchet-tolerance (default 15%), so
// scheduler speed wins are ratcheted rather than transient:
//
//	cp BENCH_scale.json /tmp/base.json
//	go test -bench BenchmarkSchedTick -benchtime=1x -run '^$' .
//	yasmin-stress -ratchet /tmp/base.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/yasmin-rt/yasmin/internal/scenario"
	"github.com/yasmin-rt/yasmin/internal/scenario/fuzz"
	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file (.yaml/.yml/.json); required unless -replay")
		seed         = flag.Int64("seed", -1, "override the scenario seed (-1 keeps the file's)")
		duration     = flag.Duration("duration", 0, "override the scenario duration (0 keeps the file's)")
		out          = flag.String("out", "", "merge the JSON report into this file under the \"scenarios\" key")
		quiet        = flag.Bool("quiet", false, "suppress the human-readable summary")
		export       = flag.String("export", "", "stream the run's trace records into this JSONL file, then verify it by replay (cluster runs write one .node<i>.jsonl per node)")
		replay       = flag.String("replay", "", "verify previously exported JSONL streams and exit (comma-separated per-node files reconcile as one cluster run; -scenario optional, supplies accel_wait_bound)")
		fuzzN        = flag.Int("fuzz", 0, "generate and check N random scenarios (seeded from -seed) instead of running a scenario file")
		shrinkFlag   = flag.Bool("shrink", false, "with -fuzz: minimise failing scenarios to small reproducers before reporting them")
		diffFlag     = flag.Bool("diff", false, "with -fuzz/-corpus: additionally run each single-node scenario on the OS backend and diff checker-visible behaviour")
		corpus       = flag.String("corpus", "", "replay every scenario file in this directory through the live checker and exit")
		ratchet      = flag.String("ratchet", "", "compare \"sched_tick\" ns/released-job rows in the -out file (default BENCH_scale.json) against this baseline file and exit non-zero on regression beyond -ratchet-tolerance")
		ratchetTol   = flag.Float64("ratchet-tolerance", 0.15, "fractional regression tolerance for -ratchet (0.15 = 15%)")
	)
	flag.Parse()

	if *ratchet != "" {
		cur := *out
		if cur == "" {
			cur = "BENCH_scale.json"
		}
		os.Exit(ratchetMain(*ratchet, cur, *ratchetTol, *quiet))
	}

	if *fuzzN > 0 {
		base := *seed
		if base < 0 {
			base = 0
		}
		os.Exit(fuzzMain(*fuzzN, base, *shrinkFlag, *diffFlag, *quiet))
	}
	if *corpus != "" {
		os.Exit(corpusMain(*corpus, *diffFlag, *quiet))
	}

	var sc *scenario.Scenario
	if *scenarioPath != "" {
		var err error
		sc, err = scenario.LoadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(2)
		}
		if *seed >= 0 {
			sc.Seed = *seed
		}
		if *duration > 0 {
			sc.Duration = spec.Duration(*duration)
		}
	}

	if *replay != "" {
		var bound time.Duration
		if sc != nil {
			bound = sc.AccelWaitBound.Std()
		}
		paths := strings.Split(*replay, ",")
		if len(paths) > 1 {
			os.Exit(replayVerifyCluster(paths, bound, *quiet))
		}
		os.Exit(replayVerify(*replay, bound, *quiet))
	}
	if sc == nil {
		fmt.Fprintln(os.Stderr, "yasmin-stress: -scenario is required")
		flag.Usage()
		os.Exit(2)
	}

	var opts scenario.RunOpts
	var pipe *telemetry.Pipeline
	var nodePipes []*telemetry.Pipeline
	var nodePaths []string
	if *export != "" {
		if sc.Nodes != nil {
			// One pipeline per node: each node's trace records, frame events
			// and cluster-epoch marks land in their own stamped file.
			nodePipes = make([]*telemetry.Pipeline, sc.Nodes.Count)
			nodePaths = make([]string, sc.Nodes.Count)
			for i := range nodePipes {
				nodePaths[i] = nodeExportPath(*export, i)
				sink, err := telemetry.NewFileSink(nodePaths[i])
				if err != nil {
					fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
					os.Exit(1)
				}
				if nodePipes[i], err = telemetry.New(sink, telemetry.Options{Node: i}); err != nil {
					fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
					os.Exit(1)
				}
			}
			opts.NodeTelemetry = nodePipes
		} else {
			sink, err := telemetry.NewFileSink(*export)
			if err != nil {
				fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
				os.Exit(1)
			}
			pipe, err = telemetry.New(sink, telemetry.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
				os.Exit(1)
			}
			// The sim producer can outrun the disk; block for ring space
			// rather than drop so the export is lossless by construction.
			opts.Telemetry = pipe.Blocking()
		}
	}

	rep, err := scenario.RunWith(sc, opts)
	if pipe != nil {
		if cerr := pipe.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: export: %v\n", cerr)
			os.Exit(1)
		}
	}
	for _, p := range nodePipes {
		if cerr := p.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: export: %v\n", cerr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		printSummary(rep)
	}
	if *out != "" {
		if err := mergeReport(*out, rep); err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			os.Exit(1)
		}
	}
	status := 0
	if pipe != nil {
		st := pipe.Stats()
		if !*quiet {
			fmt.Printf("  export     %s: %d records in %d batches, %d dropped\n",
				*export, st.Exported, st.Batches, st.Dropped)
		}
		if rc := exportVerify(*export, rep, sc.AccelWaitBound.Std(), *quiet); rc != 0 {
			status = rc
		}
	}
	if nodePipes != nil {
		for i, p := range nodePipes {
			st := p.Stats()
			if !*quiet {
				fmt.Printf("  export     %s: %d records in %d batches, %d dropped\n",
					nodePaths[i], st.Exported, st.Batches, st.Dropped)
			}
		}
		if rc := clusterExportVerify(nodePaths, rep, *quiet); rc != 0 {
			status = rc
		}
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %d invariant violations\n", len(rep.Violations))
		status = 1
	}
	os.Exit(status)
}

// fuzzMain runs a property-based campaign: n generated scenarios through
// the live checker (and, with diff, differentially against the OS backend).
// Failing scenarios are written as YAML reproducers next to the working
// directory so they can be re-run with -scenario and triaged into
// scenarios/corpus/. Campaign log lines go to stdout and are derived from
// seeds and counters only, so two invocations with the same flags produce
// byte-identical output (without -diff); 0 = clean.
func fuzzMain(n int, seed int64, shrink, diff, quiet bool) int {
	opts := fuzz.Options{
		N:      n,
		Seed:   seed,
		Shrink: shrink,
		Diff:   diff,
		Config: fuzz.Config{Cluster: true},
	}
	if !quiet {
		opts.Out = os.Stdout
	}
	res, err := fuzz.Campaign(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		return 2
	}
	if len(res.Failures) == 0 {
		return 0
	}
	for _, f := range res.Failures {
		path := fmt.Sprintf("fuzz-fail-%d.yaml", f.Seed)
		if err := os.WriteFile(path, f.Scenario.WriteYAML(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: reproducer %s: %v\n", path, err)
		} else {
			fmt.Fprintf(os.Stderr, "yasmin-stress: seed %d failed; reproducer written to %s\n", f.Seed, path)
		}
	}
	fmt.Fprintf(os.Stderr, "yasmin-stress: fuzz: %d of %d scenarios failed\n", len(res.Failures), res.Ran)
	return 1
}

// corpusMain replays every scenario file in dir (sorted by name) through the
// simulation backend and the live checker; with diff, single-node files also
// run differentially against the OS backend. The committed corpus under
// scenarios/corpus/ holds minimised reproducers of past defects plus
// shape-covering scenarios, so a clean pass is a regression gate; 0 = clean.
func corpusMain(dir string, diff, quiet bool) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		return 2
	}
	rc, ran := 0, 0
	for _, e := range entries {
		name := e.Name()
		switch filepath.Ext(name) {
		case ".yaml", ".yml", ".json":
		default:
			continue
		}
		path := filepath.Join(dir, name)
		sc, err := scenario.LoadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %s: %v\n", path, err)
			rc = 2
			continue
		}
		ran++
		rep, err := scenario.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %s: %v\n", path, err)
			rc = 2
			continue
		}
		if len(rep.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %s: %d violations; first: %s\n", path, len(rep.Violations), rep.Violations[0])
			rc = 1
			continue
		}
		status := fmt.Sprintf("ok (%d jobs, %d epochs)", rep.Jobs, rep.Epochs)
		if diff {
			dr, err := fuzz.RunDiff(sc, fuzz.DiffOpts{})
			if err == nil && !dr.Skipped && !dr.Ok() {
				// Wall-clock leg: retry once so a host load spike doesn't
				// fail the gate; deterministic mismatches reproduce.
				dr, err = fuzz.RunDiff(sc, fuzz.DiffOpts{})
			}
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "yasmin-stress: %s: diff: %v\n", path, err)
				rc = 2
			case dr.Skipped:
				status += "; diff skipped: " + dr.Reason
			case !dr.Ok():
				fmt.Fprintf(os.Stderr, "yasmin-stress: %s: %d differential mismatches; first: %s\n",
					path, len(dr.Mismatches), dr.Mismatches[0])
				rc = 1
				continue
			default:
				status += "; diff ok"
			}
		}
		if !quiet {
			fmt.Printf("corpus %s: %s\n", name, status)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: corpus %s: no scenario files\n", dir)
		return 2
	}
	if !quiet {
		fmt.Printf("corpus: %d scenarios, %s\n", ran, map[bool]string{true: "PASS", false: "FAIL"}[rc == 0])
	}
	return rc
}

// replayVerify reloads an exported stream, re-runs the scenario invariants
// on it and reports transport losslessness; 0 = clean.
func replayVerify(path string, bound time.Duration, quiet bool) int {
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
		return 2
	}
	viol := scenario.CheckStream(st, scenario.StreamCheckOpts{AccelWaitBound: bound})
	lost := st.Lost()
	if !quiet {
		fmt.Printf("replay %s\n", path)
		fmt.Printf("  stream     %d events: %d jobs, %d reconfigs, %d retires, %d accel\n",
			len(st.Events), len(st.Jobs), len(st.Reconfigs), len(st.Retires), len(st.Accels))
		if st.Summary != nil {
			fmt.Printf("  trailer    published=%d exported=%d dropped=%d batches=%d\n",
				st.Summary.Published, st.Summary.Exported, st.Summary.Dropped, st.Summary.Batches)
		}
		fmt.Printf("  lost       %d records\n", lost)
	}
	if len(viol) > 0 || lost > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: replay %s: %d lost records, %d violations\n", path, lost, len(viol))
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "    - %s\n", v)
		}
		return 1
	}
	if !quiet {
		fmt.Printf("  replay     PASS (0 violations, 0 lost records)\n")
	}
	return 0
}

// nodeExportPath derives node i's export file from the -export base:
// base.jsonl -> base.node<i>.jsonl.
func nodeExportPath(path string, node int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.node%d%s", strings.TrimSuffix(path, ext), node, ext)
}

// replayVerifyCluster reloads the per-node exports of one cluster run and
// reconciles them: each stream checks individually, frame accounting closes
// across files, epoch histories agree; 0 = clean.
func replayVerifyCluster(paths []string, bound time.Duration, quiet bool) int {
	sts := make([]*telemetry.Stream, len(paths))
	var lost uint64
	for i, path := range paths {
		st, err := telemetry.ReplayFile(strings.TrimSpace(path))
		if err != nil {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %v\n", err)
			return 2
		}
		sts[i] = st
		lost += st.Lost()
		if !quiet {
			fmt.Printf("replay %s (node %d)\n", strings.TrimSpace(path), st.Node())
			fmt.Printf("  stream     %d events: %d jobs, %d frames, %d cluster epochs\n",
				len(st.Events), len(st.Jobs), len(st.Frames), len(st.CEpochs))
		}
	}
	viol := scenario.CheckStreams(sts, scenario.StreamCheckOpts{AccelWaitBound: bound})
	if len(viol) > 0 || lost > 0 {
		fmt.Fprintf(os.Stderr, "yasmin-stress: replay: %d lost records, %d violations\n", lost, len(viol))
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "    - %s\n", v)
		}
		return 1
	}
	if !quiet {
		fmt.Printf("  replay     PASS (%d node streams reconciled, 0 violations, 0 lost records)\n", len(sts))
	}
	return 0
}

// clusterExportVerify reconciles the just-written per-node exports and
// cross-checks them against the live report: the streams must jointly carry
// every job the cluster ran and every node must have logged the full
// cluster-epoch history.
func clusterExportVerify(paths []string, rep *scenario.Report, quiet bool) int {
	rc := replayVerifyCluster(paths, 0, quiet)
	var jobs int64
	for _, path := range paths {
		st, err := telemetry.ReplayFile(path)
		if err != nil {
			return 2
		}
		jobs += int64(len(st.Jobs))
		if len(st.CEpochs) != rep.Epochs {
			fmt.Fprintf(os.Stderr, "yasmin-stress: export %s: node %d logged %d cluster epochs, run committed %d\n",
				path, st.Node(), len(st.CEpochs), rep.Epochs)
			rc = 1
		}
	}
	if jobs != rep.Jobs {
		fmt.Fprintf(os.Stderr, "yasmin-stress: export: streams hold %d jobs, live run recorded %d\n", jobs, rep.Jobs)
		rc = 1
	}
	return rc
}

// exportVerify replays the just-written export and additionally cross-checks
// the stream's record counts against the live run's report — the end-to-end
// proof that everything the recorder saw reached the file.
func exportVerify(path string, rep *scenario.Report, bound time.Duration, quiet bool) int {
	rc := replayVerify(path, bound, quiet)
	st, err := telemetry.ReplayFile(path)
	if err != nil {
		return 2
	}
	mismatch := func(what string, got, want int64) {
		fmt.Fprintf(os.Stderr, "yasmin-stress: export %s: stream has %d %s, live run recorded %d\n",
			path, got, what, want)
		rc = 1
	}
	if int64(len(st.Jobs)) != rep.Jobs {
		mismatch("jobs", int64(len(st.Jobs)), rep.Jobs)
	}
	if len(st.Reconfigs) != rep.Epochs {
		mismatch("reconfig epochs", int64(len(st.Reconfigs)), int64(rep.Epochs))
	}
	if len(st.Retires) != rep.Retires {
		mismatch("retirements", int64(len(st.Retires)), int64(rep.Retires))
	}
	return rc
}

func printSummary(rep *scenario.Report) {
	fmt.Printf("scenario %s (seed %d)\n", rep.Scenario, rep.Seed)
	fmt.Printf("  tasks      %d declared (%d slots provisioned), %d workers\n", rep.Tasks, rep.PeakTasks, rep.Workers)
	fmt.Printf("  simulated  %v in %v wall (%d engine steps)\n",
		time.Duration(rep.SimDurationNS), time.Duration(rep.WallNS).Round(time.Millisecond), rep.EngineSteps)
	fmt.Printf("  jobs       %d (%.0f jobs/wall-second), %d deadline misses, %d overruns\n",
		rep.Jobs, rep.JobsPerWallSec, rep.Misses, rep.Overruns)
	fmt.Printf("  data plane %d published, %d delivered\n", rep.Published, rep.Delivered)
	fmt.Printf("  reconfig   %d epochs, %d retirements, %d admission rejections\n",
		rep.Epochs, rep.Retires, rep.Rejections)
	fmt.Printf("  scheduler  %d steals (%d misses), %d migrations, %d idle wakes, %d signals (%d deduped), %d view publishes\n",
		rep.Sched.Steals, rep.Sched.StealMisses, rep.Sched.Migrations, rep.Sched.IdleWakes,
		rep.Sched.Signals, rep.Sched.SignalsDeduped, rep.Sched.ViewPublishes)
	for _, n := range rep.Nodes {
		fmt.Printf("  node %-5d %d tasks, %d jobs, %d misses; frames %d sent / %d recv / %d dropped / %d rexmit; clock offset %v (%d syncs)\n",
			n.Node, n.Tasks, n.Jobs, n.Misses,
			n.FramesSent, n.FramesReceived, n.FramesDropped, n.FramesRetransmitted,
			time.Duration(n.ClockOffsetNS).Round(time.Microsecond), n.ClockSamples)
	}
	if rep.AccelAcquires > 0 || rep.AccelParks > 0 {
		fmt.Printf("  accel      %d acquires, %d parks, %d PIP boosts, max wait %v\n",
			rep.AccelAcquires, rep.AccelParks, rep.AccelBoosts,
			time.Duration(rep.AccelMaxWaitNS).Round(time.Microsecond))
	}
	if len(rep.Violations) == 0 {
		fmt.Printf("  checker    PASS (0 violations)\n")
	} else {
		fmt.Printf("  checker    FAIL (%d violations)\n", len(rep.Violations))
		for _, v := range rep.Violations {
			fmt.Printf("    - %s\n", v)
		}
	}
}

// mergeReport read-modify-writes the report into path under
// "scenarios".<name>, preserving whatever else (e.g. BenchmarkSchedTick's
// "sched_tick" rows) the file holds.
func mergeReport(path string, rep *scenario.Report) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: existing file is not a JSON object: %w", path, err)
		}
	}
	scenarios := map[string]json.RawMessage{}
	if raw, ok := doc["scenarios"]; ok {
		if err := json.Unmarshal(raw, &scenarios); err != nil {
			return fmt.Errorf("%s: \"scenarios\" key: %w", path, err)
		}
	}
	repRaw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	scenarios[rep.Scenario] = repRaw
	scRaw, err := json.Marshal(scenarios)
	if err != nil {
		return err
	}
	doc["scenarios"] = scRaw
	outData, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outData, '\n'), 0o644)
}
