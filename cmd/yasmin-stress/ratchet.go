package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ratchetRow is the slice of a BenchmarkSchedTick "sched_tick" row the
// ratchet compares; extra fields in the file are ignored.
type ratchetRow struct {
	Name             string  `json:"name"`
	NsPerReleasedJob float64 `json:"ns_per_released_job"`
}

// loadSchedTick reads the "sched_tick" rows out of a BENCH_scale.json-shaped
// file, keyed by shape name.
func loadSchedTick(path string) (map[string]ratchetRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		SchedTick []ratchetRow `json:"sched_tick"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.SchedTick) == 0 {
		return nil, fmt.Errorf("%s: no \"sched_tick\" rows", path)
	}
	rows := make(map[string]ratchetRow, len(doc.SchedTick))
	for _, r := range doc.SchedTick {
		rows[r.Name] = r
	}
	return rows, nil
}

// ratchetMain is the CI perf ratchet: compare the freshly benchmarked
// ns-per-released-job of every sched_tick shape in curPath against the
// committed baseline in basePath and fail on a regression beyond tol
// (fractional, e.g. 0.15 = 15%). Shapes present in the baseline must still
// exist in the current run — dropping a shape would silently un-ratchet it —
// while new shapes pass unchecked (their first committed run becomes the
// baseline). Improvements are reported so maintainers know when to commit a
// tighter BENCH_scale.json; 0 = within tolerance.
func ratchetMain(basePath, curPath string, tol float64, quiet bool) int {
	base, err := loadSchedTick(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: ratchet baseline: %v\n", err)
		return 2
	}
	cur, err := loadSchedTick(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yasmin-stress: ratchet current: %v\n", err)
		return 2
	}
	names := make([]string, 0, len(base))
	for name := range base { //yasmin:orderinvariant sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	rc := 0
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "yasmin-stress: ratchet: shape %s in baseline but missing from %s\n", name, curPath)
			rc = 1
			continue
		}
		delta := (c.NsPerReleasedJob - b.NsPerReleasedJob) / b.NsPerReleasedJob
		line := fmt.Sprintf("ratchet %-28s %9.0f -> %9.0f ns/released-job (%+.1f%%, tolerance %.0f%%)",
			name, b.NsPerReleasedJob, c.NsPerReleasedJob, delta*100, tol*100)
		if delta > tol {
			fmt.Fprintf(os.Stderr, "yasmin-stress: %s: REGRESSION\n", line)
			rc = 1
			continue
		}
		if !quiet {
			fmt.Println(line)
		}
	}
	if !quiet {
		fmt.Printf("ratchet: %d shapes, %s\n", len(names), map[bool]string{true: "PASS", false: "FAIL"}[rc == 0])
	}
	return rc
}
