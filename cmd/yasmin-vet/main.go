// Command yasmin-vet runs the project's invariant analyzers (lockorder,
// lockedblock, noalloc, determinism, atomicview) over the tree, in the
// spirit of a go/analysis multichecker:
//
//	yasmin-vet ./...
//	yasmin-vet -baseline vet-baseline.txt ./internal/core/...
//
// Exit status is 1 if any diagnostic is not covered by the baseline file.
// Baseline entries are position-free ("analyzer<TAB>file<TAB>message") so
// unrelated edits do not invalidate them; -write-baseline regenerates the
// file from the current findings for deliberate grandfathering (target:
// empty).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/yasmin-rt/yasmin/internal/analyzers"
	"github.com/yasmin-rt/yasmin/internal/analyzers/anlz"
)

func main() {
	var (
		baselinePath  = flag.String("baseline", "", "baseline file of grandfathered findings to tolerate")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the baseline file from current findings and exit 0")
		list          = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := anlz.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := anlz.Analyze(pkgs, analyzers.All)
	if err != nil {
		fatal(err)
	}
	analyzed := 0
	for _, p := range pkgs {
		if p.Match {
			analyzed++
		}
	}

	type entry struct{ analyzer, file, message string }
	var entries []entry
	var lines []string
	fset := func() *anlz.Package {
		if len(pkgs) > 0 {
			return pkgs[0]
		}
		return nil
	}()
	for _, d := range diags {
		pos := fset.Fset.Position(d.Pos)
		rel, relErr := filepath.Rel(cwd, pos.Filename)
		if relErr != nil {
			rel = pos.Filename
		}
		entries = append(entries, entry{d.Analyzer, rel, d.Message})
		lines = append(lines, fmt.Sprintf("%s:%d:%d: [%s] %s", rel, pos.Line, pos.Column, d.Analyzer, d.Message))
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fatal(fmt.Errorf("-write-baseline requires -baseline"))
		}
		var b strings.Builder
		b.WriteString("# yasmin-vet baseline: grandfathered findings tolerated by CI.\n")
		b.WriteString("# Format: analyzer<TAB>file<TAB>message (position-free). Target: empty.\n")
		keys := make([]string, 0, len(entries))
		for _, e := range entries {
			keys = append(keys, e.analyzer+"\t"+e.file+"\t"+e.message)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k + "\n")
		}
		if err := os.WriteFile(*baselinePath, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("yasmin-vet: wrote %d baseline entries to %s\n", len(entries), *baselinePath)
		return
	}

	baseline := map[string]int{}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			baseline[line]++
		}
		f.Close()
		if err := sc.Err(); err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
	}

	bad := 0
	for i, e := range entries {
		key := e.analyzer + "\t" + e.file + "\t" + e.message
		if baseline[key] > 0 {
			baseline[key]--
			continue
		}
		fmt.Println(lines[i])
		bad++
	}
	for key, n := range baseline {
		if n > 0 {
			fmt.Printf("yasmin-vet: stale baseline entry (finding no longer present): %s\n",
				strings.ReplaceAll(key, "\t", " | "))
		}
	}
	if bad > 0 {
		fmt.Printf("yasmin-vet: %d finding(s) across %d package(s)\n", bad, analyzed)
		os.Exit(1)
	}
	fmt.Printf("yasmin-vet: ok (%d packages, %d analyzers)\n", analyzed, len(analyzers.All))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "yasmin-vet:", err)
	os.Exit(1)
}
