// Command yasmin-cyclictest regenerates Table 2 of the paper: cyclictest
// wake-up latencies (min/max/avg in µs) for YASMIN and the native tool on
// Linux+PREEMPT_RT and LitmusRT (GSN-EDF and P-RES plugins), under
// stress-ng load, on a simulated Odroid-XU4.
//
// Usage:
//
//	yasmin-cyclictest [-loops 10000] [-threads 6] [-interval 10ms] [-seed N]
//
// Defaults mirror the paper's invocation:
// cyclictest -t 6 -d 0 -i 10000 -m -l 10000.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/experiments"
)

func main() {
	loops := flag.Int("loops", 10000, "cyclictest -l: measurement loops per thread")
	threads := flag.Int("threads", 6, "cyclictest -t: measurement threads")
	interval := flag.Duration("interval", 10*time.Millisecond, "cyclictest -i: wake interval")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	cfg := experiments.DefaultTable2Config()
	cfg.Opts.Loops = *loops
	cfg.Opts.Threads = *threads
	cfg.Opts.Interval = *interval
	cfg.Seed = *seed

	fmt.Printf("# Table 2 — cyclictest -t %d -d 0 -i %d -m -l %d under %s\n\n",
		cfg.Opts.Threads, cfg.Opts.Interval.Microseconds(), cfg.Opts.Loops, cfg.Stress)
	rows, err := experiments.Table2(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-cyclictest:", err)
		os.Exit(1)
	}
	if err := experiments.PrintTable2(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-cyclictest:", err)
		os.Exit(1)
	}
}
