// Command yasmin-sar regenerates Figure 4 of the paper: the Search & Rescue
// drone scheduling exploration. It runs the Figure 3b task graph on a
// simulated Apalis TK1 under every combination of scheduling policy
// (G-EDF, G-DM, P-EDF, P-DM) and version mode (CPU only, GPU only, both),
// reporting per-frame processing times and deadline-miss ratios.
//
// Usage:
//
//	yasmin-sar [-mission 120s] [-workers 3] [-boats 0.3] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/experiments"
)

func main() {
	mission := flag.Duration("mission", 120*time.Second, "simulated mission duration")
	workers := flag.Int("workers", 3, "worker threads (the 4th TK1 core hosts the scheduler)")
	boats := flag.Float64("boats", 0.3, "probability a frame contains boats")
	seed := flag.Int64("seed", 1, "random seed")
	period := flag.Duration("period", 0, "frame period override (default 500ms = 2 fps)")
	flag.Parse()

	cfg := experiments.Fig4Config{
		Mission:     *mission,
		Workers:     *workers,
		Seed:        *seed,
		BoatProb:    *boats,
		FramePeriod: *period,
	}
	fmt.Printf("# Fig. 4 — SAR drone scheduling exploration (%v mission, %d workers, boats=%.2f)\n\n",
		cfg.Mission, cfg.Workers, cfg.BoatProb)
	rows, err := experiments.Fig4(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-sar:", err)
		os.Exit(1)
	}
	if err := experiments.PrintFig4(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-sar:", err)
		os.Exit(1)
	}
}
