// Command yasmin-sim runs a task set or a whole declarative application
// under a chosen YASMIN configuration on a simulated platform and reports
// per-task response times, deadline misses and middleware overhead — the
// quickest way to explore a deployment without writing a program.
//
// Two input forms:
//
//   - -set: a flat task set (JSON, as produced by yasmin-taskgen): each
//     task becomes an independent periodic task with one version.
//   - -app: a full application spec (JSON, see internal/spec): multi-version
//     tasks, accelerators, DAGs over FIFO channels, and pub-sub topics
//     (N→M with overflow policies; per-topic delivery/drop counters are
//     reported after the run); function-less versions get synthesized
//     bodies from their WCETs. Under -mapping
//     partitioned, explicit "core" pins in the spec are respected; a spec
//     with no pins is first-fit bin-packed.
//
// Usage:
//
//	yasmin-taskgen -n 24 -u 1.4 | yasmin-sim -workers 3 -mapping global -priority edf
//	yasmin-sim -set tasks.json -mapping partitioned -priority dm -horizon 5s
//	yasmin-sim -app app.json -select energy -platform apalis-tk1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/yasmin-rt/yasmin/internal/analysis"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/taskset"
	"github.com/yasmin-rt/yasmin/internal/telemetry"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

func main() {
	setPath := flag.String("set", "-", "flat task set JSON file ('-' for stdin)")
	appPath := flag.String("app", "", "application spec JSON file (overrides -set; '-' for stdin)")
	workers := flag.Int("workers", 2, "worker threads")
	mapping := flag.String("mapping", "global", "mapping scheme: global|partitioned")
	priority := flag.String("priority", "edf", "priority assignment: rm|dm|edf")
	selectM := flag.String("select", "first", "version selection: first|energy|tradeoff|mode|bitmask")
	horizon := flag.Duration("horizon", 2*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	board := flag.String("platform", "odroid-xu4", "platform: odroid-xu4|apalis-tk1|generic-N")
	gantt := flag.Bool("gantt", false, "print a text Gantt chart of the first 100ms")
	traceOut := flag.String("trace-out", "",
		"stream every trace record (jobs, reconfigs, retirements, accel events) to this JSONL file (schema: docs/TRACE.md)")
	var events reconfigEvents
	flag.Var(&events, "reconfig-at",
		"scripted mode switch \"TIME=MODE\" (repeatable, or comma-separated); MODE must be declared in the -app spec's \"modes\"")
	flag.Parse()

	if err := run(*setPath, *appPath, *workers, *mapping, *priority, *selectM,
		*horizon, *seed, *board, *gantt, *traceOut, events); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-sim:", err)
		os.Exit(1)
	}
}

// reconfigEvent is one scripted mode switch of the scenario.
type reconfigEvent struct {
	at   time.Duration
	mode string
}

// reconfigEvents implements flag.Value for repeatable -reconfig-at flags.
type reconfigEvents []reconfigEvent

func (r *reconfigEvents) String() string {
	parts := make([]string, len(*r))
	for i, e := range *r {
		parts[i] = fmt.Sprintf("%v=%s", e.at, e.mode)
	}
	return strings.Join(parts, ",")
}

func (r *reconfigEvents) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		at, mode, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || mode == "" {
			return fmt.Errorf("bad -reconfig-at %q; want TIME=MODE (e.g. 500ms=cruise)", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil || d < 0 {
			return fmt.Errorf("bad -reconfig-at time %q", at)
		}
		*r = append(*r, reconfigEvent{at: d, mode: mode})
	}
	return nil
}

// loadSpec resolves the input into an application spec: either a full spec
// file (-app) or a flat task set (-set) lifted through the bridge.
func loadSpec(setPath, appPath string) (*spec.Spec, error) {
	if appPath != "" {
		if appPath == "-" {
			return spec.Load(os.Stdin)
		}
		return spec.LoadFile(appPath)
	}
	in := os.Stdin
	if setPath != "-" {
		f, err := os.Open(setPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	set, err := taskset.ReadJSON(in)
	if err != nil {
		return nil, err
	}
	return spec.FromTaskSet(set), nil
}

func resolvePlatform(board string) (*platform.Platform, error) {
	switch {
	case board == "odroid-xu4":
		return platform.OdroidXU4(), nil
	case board == "apalis-tk1":
		return platform.ApalisTK1(), nil
	case strings.HasPrefix(board, "generic-"):
		var n int
		if _, err := fmt.Sscanf(board, "generic-%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad generic platform %q", board)
		}
		return platform.Generic(n), nil
	default:
		return nil, fmt.Errorf("unknown platform %q", board)
	}
}

func run(setPath, appPath string, workers int, mapping, priority, selectM string,
	horizon time.Duration, seed int64, board string, gantt bool, traceOut string, events reconfigEvents) error {
	s, err := loadSpec(setPath, appPath)
	if err != nil {
		return err
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	for _, ev := range events {
		if ev.at > horizon {
			return fmt.Errorf("-reconfig-at %v=%s: event beyond -horizon %v would never fire", ev.at, ev.mode, horizon)
		}
		found := false
		for i := range s.Modes {
			if s.Modes[i].Name == ev.mode {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-reconfig-at %v=%s: spec declares no mode %q", ev.at, ev.mode, ev.mode)
		}
	}

	pl, err := resolvePlatform(board)
	if err != nil {
		return err
	}
	if workers+1 > pl.NumCores() {
		return fmt.Errorf("%d workers + scheduler need %d cores; %s has %d",
			workers, workers+1, pl.Name, pl.NumCores())
	}

	cfg := core.Config{
		Workers:    workers,
		Preemption: true,
		RecordJobs: gantt,
		// Arbitration events feed the per-pool accel report below.
		RecordAccel: true,
	}
	var pipe *telemetry.Pipeline
	if traceOut != "" {
		sink, err := telemetry.NewFileSink(traceOut)
		if err != nil {
			return err
		}
		pipe, err = telemetry.New(sink, telemetry.Options{})
		if err != nil {
			return err
		}
		// The simulation can produce records faster than the disk drains
		// them; wait for ring space so the export stays lossless.
		cfg.Telemetry = pipe.Blocking()
	}
	// Prefer big cores for workers where the platform distinguishes them.
	big := pl.CoresOfKind(platform.BigCore)
	if len(big) >= workers+1 {
		cfg.WorkerCores = big[:workers]
		cfg.SchedulerCore = big[workers]
	}
	switch mapping {
	case "global":
		cfg.Mapping = core.MappingGlobal
	case "partitioned":
		cfg.Mapping = core.MappingPartitioned
	default:
		return fmt.Errorf("unknown mapping %q", mapping)
	}
	switch priority {
	case "rm":
		cfg.Priority = core.PriorityRM
	case "dm":
		cfg.Priority = core.PriorityDM
	case "edf":
		cfg.Priority = core.PriorityEDF
	default:
		return fmt.Errorf("unknown priority %q", priority)
	}
	switch selectM {
	case "first":
		cfg.VersionSelect = core.SelectFirst
	case "energy":
		cfg.VersionSelect = core.SelectEnergy
	case "tradeoff":
		cfg.VersionSelect = core.SelectTradeoff
	case "mode":
		cfg.VersionSelect = core.SelectMode
	case "bitmask":
		cfg.VersionSelect = core.SelectBitmask
	default:
		return fmt.Errorf("unknown version selection %q", selectM)
	}

	// Analysis view of the application: utilization for the report, and the
	// input to first-fit bin packing under partitioned mapping.
	set, err := s.TaskSet()
	if err != nil {
		return err
	}
	if cfg.Mapping == core.MappingPartitioned {
		// Respect explicit core pins in a hand-written spec; bin-pack only
		// when the spec leaves every task on the default core.
		pinned, onZero := false, 0
		for i := range s.Tasks {
			if s.Tasks[i].Core != 0 {
				pinned = true
			} else {
				onZero++
			}
		}
		if pinned && onZero > 0 {
			fmt.Fprintf(os.Stderr,
				"yasmin-sim: using the spec's core pins; %d task(s) without a \"core\" field stay on worker 0\n",
				onZero)
		}
		if !pinned {
			bins, err := analysis.Partition(set, workers, analysis.UtilizationFits(1.0))
			if err != nil {
				return fmt.Errorf("partitioning failed (%w); try -mapping global", err)
			}
			for w, idxs := range bins {
				for _, ti := range idxs {
					s.Tasks[ti].Core = w
				}
			}
		}
	}

	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, pl, nil)
	if err != nil {
		return err
	}
	app, err := s.Build(cfg, env)
	if err != nil {
		return err
	}
	var startErr error
	var rejections []string
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			startErr = err
			return
		}
		for _, ev := range events {
			c.SleepUntil(ev.at)
			if err := app.SwitchMode(c, ev.mode); err != nil {
				// A rejected transaction leaves the running schedule
				// untouched; report it and play the scenario on.
				rejections = append(rejections,
					fmt.Sprintf("t=%v mode=%s: %v", ev.at, ev.mode, err))
			}
		}
		c.SleepUntil(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})
	runErr := eng.Run(sim.Time(horizon + time.Minute))
	if pipe != nil {
		// Producers are quiesced once the engine stops; drain and seal the
		// export before reporting.
		if err := pipe.Close(); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
	}
	if runErr != nil {
		return runErr
	}
	if startErr != nil {
		return fmt.Errorf("start: %w", startErr)
	}

	name := s.Name
	if name == "" {
		name = "app"
	}
	fmt.Printf("# %s · %s · %d workers · %s/%s/%s · U=%.2f · horizon %v · seed %d\n",
		name, pl.Name, workers, mapping, priority, selectM,
		set.TotalUtilization(), horizon, seed)
	if len(s.Topics) > 0 {
		for i := range s.Topics {
			tp := &s.Topics[i]
			pol := tp.Policy
			if pol == "" {
				pol = "reject"
			}
			fmt.Printf("# topic %-12s cap=%-3d policy=%-11s prio=%-2d pubs=%d subs=%d dropped=%d\n",
				tp.Name, tp.Capacity, pol, tp.Priority, len(tp.Pubs), len(tp.Subs),
				app.TopicDropped(s.TopicID(tp.Name)))
		}
	}
	// Reconfiguration epochs: which tasks each committed transaction
	// admitted/retuned/retired and how long the quiescent barrier paused
	// middleware interactions; retirements report when the drain finished.
	for _, rc := range app.Recorder().Reconfigs() {
		fmt.Printf("# reconfig epoch %d at %-10v admitted=%v retuned=%v retiring=%v mode=%d pause=%v\n",
			rc.Epoch, rc.At, rc.Admitted, rc.Retuned, rc.Retiring, rc.Mode, rc.Pause)
	}
	for _, re := range app.Recorder().Retires() {
		fmt.Printf("# retired %-14s at %-10v (epoch %d drain complete)\n", re.Task, re.At, re.Epoch)
	}
	for _, rj := range rejections {
		fmt.Printf("# reconfig REJECTED: %s\n", rj)
	}
	// Accelerator arbitration: per-pool acquisition/contention counters and
	// the longest single park (the observed priority-inversion span).
	if events := app.Recorder().AccelEvents(); len(events) > 0 {
		type poolStat struct {
			acquires, parks, boosts int
			maxWait                 time.Duration
		}
		stats := map[string]*poolStat{}
		parkAt := map[string]time.Duration{}
		var pools []string
		for _, e := range events {
			st := stats[e.Pool]
			if st == nil {
				st = &poolStat{}
				stats[e.Pool] = st
				pools = append(pools, e.Pool)
			}
			key := fmt.Sprintf("%s#%d", e.Task, e.Job)
			switch e.Kind {
			case trace.AccelAcquire, trace.AccelGrant:
				st.acquires++
				if at, ok := parkAt[key]; ok {
					if w := e.At - at; w > st.maxWait {
						st.maxWait = w
					}
					delete(parkAt, key)
				}
			case trace.AccelPark:
				st.parks++
				parkAt[key] = e.At
			case trace.AccelBoost:
				st.boosts++
			}
		}
		for _, p := range pools {
			st := stats[p]
			fmt.Printf("# accel %-12s acquires=%-5d parks=%-4d pip-boosts=%-4d max-wait=%v\n",
				p, st.acquires, st.parks, st.boosts, st.maxWait)
		}
	}
	if err := app.Recorder().WriteSummary(os.Stdout); err != nil {
		return err
	}
	rec := app.Recorder()
	fmt.Printf("# totals: jobs=%d misses=%d (%.2f%%) overruns=%d sched-overhead avg=%v max=%v\n",
		rec.TotalJobs(), rec.TotalMisses(), 100*rec.MissRatio(), app.Overruns(),
		app.Overheads().Total().Mean(), app.Overheads().Total().Max())
	if pipe != nil {
		st := pipe.Stats()
		fmt.Printf("# telemetry %s: exported=%d dropped=%d batches=%d\n",
			traceOut, st.Exported, st.Dropped, st.Batches)
	}
	if gantt {
		if err := rec.Gantt(os.Stdout, 100*time.Millisecond, 100); err != nil {
			return err
		}
	}
	// Task-function failures make the stats above meaningless; fail the run
	// so scripts don't consume them as valid results.
	if n := app.TaskErrors(); n > 0 {
		return fmt.Errorf("%d task error(s); first: %w", n, app.FirstError())
	}
	return nil
}
