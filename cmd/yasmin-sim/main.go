// Command yasmin-sim runs an arbitrary task set (JSON, as produced by
// yasmin-taskgen) under a chosen YASMIN configuration on a simulated
// platform and reports per-task response times, deadline misses and
// middleware overhead — the quickest way to explore a deployment without
// writing a program.
//
// Usage:
//
//	yasmin-taskgen -n 24 -u 1.4 | yasmin-sim -workers 3 -mapping global -priority edf
//	yasmin-sim -set tasks.json -mapping partitioned -priority dm -horizon 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/yasmin-rt/yasmin/internal/analysis"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func main() {
	setPath := flag.String("set", "-", "task set JSON file ('-' for stdin)")
	workers := flag.Int("workers", 2, "worker threads")
	mapping := flag.String("mapping", "global", "mapping scheme: global|partitioned")
	priority := flag.String("priority", "edf", "priority assignment: rm|dm|edf")
	horizon := flag.Duration("horizon", 2*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "simulation seed")
	board := flag.String("platform", "odroid-xu4", "platform: odroid-xu4|apalis-tk1|generic-N")
	gantt := flag.Bool("gantt", false, "print a text Gantt chart of the first 100ms")
	flag.Parse()

	if err := run(*setPath, *workers, *mapping, *priority, *horizon, *seed, *board, *gantt); err != nil {
		fmt.Fprintln(os.Stderr, "yasmin-sim:", err)
		os.Exit(1)
	}
}

func run(setPath string, workers int, mapping, priority string,
	horizon time.Duration, seed int64, board string, gantt bool) error {
	// Load the set.
	in := os.Stdin
	if setPath != "-" {
		f, err := os.Open(setPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	set, err := taskset.ReadJSON(in)
	if err != nil {
		return err
	}

	// Resolve the platform.
	var pl *platform.Platform
	switch {
	case board == "odroid-xu4":
		pl = platform.OdroidXU4()
	case board == "apalis-tk1":
		pl = platform.ApalisTK1()
	case strings.HasPrefix(board, "generic-"):
		var n int
		if _, err := fmt.Sscanf(board, "generic-%d", &n); err != nil || n < 1 {
			return fmt.Errorf("bad generic platform %q", board)
		}
		pl = platform.Generic(n)
	default:
		return fmt.Errorf("unknown platform %q", board)
	}
	if workers+1 > pl.NumCores() {
		return fmt.Errorf("%d workers + scheduler need %d cores; %s has %d",
			workers, workers+1, pl.Name, pl.NumCores())
	}

	cfg := core.Config{
		Workers:    workers,
		Preemption: true,
		MaxTasks:   set.Len(),
		RecordJobs: gantt,
	}
	// Prefer big cores for workers where the platform distinguishes them.
	big := pl.CoresOfKind(platform.BigCore)
	if len(big) >= workers+1 {
		cfg.WorkerCores = big[:workers]
		cfg.SchedulerCore = big[workers]
	}
	switch mapping {
	case "global":
		cfg.Mapping = core.MappingGlobal
	case "partitioned":
		cfg.Mapping = core.MappingPartitioned
	default:
		return fmt.Errorf("unknown mapping %q", mapping)
	}
	switch priority {
	case "rm":
		cfg.Priority = core.PriorityRM
	case "dm":
		cfg.Priority = core.PriorityDM
	case "edf":
		cfg.Priority = core.PriorityEDF
	default:
		return fmt.Errorf("unknown priority %q", priority)
	}

	// Partitioned mapping: first-fit bin-pack the set.
	virtCore := map[int]int{}
	if cfg.Mapping == core.MappingPartitioned {
		bins, err := analysis.Partition(set, workers, analysis.UtilizationFits(1.0))
		if err != nil {
			return fmt.Errorf("partitioning failed (%w); try -mapping global", err)
		}
		for w, idxs := range bins {
			for _, ti := range idxs {
				virtCore[ti] = w
			}
		}
	}

	eng := sim.NewEngine(seed)
	env, err := rt.NewSimEnv(eng, pl, nil)
	if err != nil {
		return err
	}
	app, err := core.New(cfg, env)
	if err != nil {
		return err
	}
	for i := range set.Tasks {
		tk := &set.Tasks[i]
		td := core.TData{Name: tk.Name, Period: tk.Period, Deadline: tk.Deadline, ReleaseOffset: tk.Offset}
		if cfg.Mapping == core.MappingPartitioned {
			td.VirtCore = virtCore[i]
		}
		tid, err := app.TaskDecl(td)
		if err != nil {
			return err
		}
		wcet := tk.WCET
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			return x.Compute(wcet)
		}, nil, core.VSelect{WCET: wcet}); err != nil {
			return err
		}
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			fmt.Fprintln(os.Stderr, "start:", err)
			return
		}
		c.SleepUntil(horizon)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(horizon + time.Minute)); err != nil {
		return err
	}

	fmt.Printf("# %s · %d workers · %s/%s · U=%.2f · horizon %v · seed %d\n",
		pl.Name, workers, mapping, priority, set.TotalUtilization(), horizon, seed)
	if err := app.Recorder().WriteSummary(os.Stdout); err != nil {
		return err
	}
	rec := app.Recorder()
	fmt.Printf("# totals: jobs=%d misses=%d (%.2f%%) overruns=%d sched-overhead avg=%v max=%v\n",
		rec.TotalJobs(), rec.TotalMisses(), 100*rec.MissRatio(), app.Overruns(),
		app.Overheads().Total().Mean(), app.Overheads().Total().Max())
	if gantt {
		if err := rec.Gantt(os.Stdout, 100*time.Millisecond, 100); err != nil {
			return err
		}
	}
	return nil
}
