// The offline-schedule example demonstrates YASMIN's off-line scheduling
// mode (paper Section 3.4): a static time-triggered table is synthesised
// ahead of execution for a small multi-version task set, versions are
// pre-selected by the synthesiser (here minimising energy), and the on-line
// dispatcher then replays the table with delay slots — no scheduler thread,
// no run-time scheduling decisions.
//
// One declarative application spec is the single source of truth: the
// off-line synthesiser consumes its OfflineSpecs bridge, and the runtime
// App is built from the very same description (the versions carry no
// functions, so Build synthesizes WCET-shaped bodies).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/offline"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

func main() {
	// The application: a sensing -> fusion chain plus two independent
	// tasks; "fusion" and "log" have fast/efficient version pairs. This
	// structure is plain data — it could equally be loaded from JSON.
	s := &spec.Spec{
		Name:   "offline-demo",
		Accels: []spec.AccelSpec{{Name: "gpu0"}},
		Channels: []spec.ChannelSpec{
			// Capacity 0: a pure precedence edge. The synthesiser sequences
			// fusion after sense; at run time the table replay needs no data
			// hand-off (and a data FIFO would race the table's release
			// instants, which do not model middleware overheads).
			{Name: "sf", Capacity: 0, Src: "sense", Dst: "fusion"},
		},
		Tasks: []spec.TaskSpec{
			{Name: "sense", Period: spec.Duration(20 * time.Millisecond),
				Versions: []spec.VersionSpec{{WCET: spec.Duration(2 * time.Millisecond), Energy: 2}}},
			{Name: "fusion", Versions: []spec.VersionSpec{
				{WCET: spec.Duration(3 * time.Millisecond), Accel: "gpu0", Energy: 9}, // GPU, fast
				{WCET: spec.Duration(7 * time.Millisecond), Energy: 3},                // CPU, frugal
			}},
			{Name: "control", Period: spec.Duration(10 * time.Millisecond),
				Versions: []spec.VersionSpec{{WCET: spec.Duration(1 * time.Millisecond), Energy: 1}}},
			{Name: "log", Period: spec.Duration(40 * time.Millisecond),
				Versions: []spec.VersionSpec{
					{WCET: spec.Duration(4 * time.Millisecond), Energy: 4},
					{WCET: spec.Duration(2 * time.Millisecond), Accel: "gpu0", Energy: 8},
				}},
		},
	}

	// Bridge the description to the synthesiser: precedence edges become
	// Preds, accelerator names become indices.
	specs, err := s.OfflineSpecs()
	if err != nil {
		log.Fatal(err)
	}
	sched, err := offline.Synthesize(specs, 2, 1, offline.MinEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised table: cycle=%v makespan=%v energy=%.0f mJ/cycle\n",
		sched.Table.Cycle, sched.Makespan, sched.Energy)
	for w, entries := range sched.Table.PerWorker {
		fmt.Printf("  worker %d:\n", w)
		for _, e := range entries {
			fmt.Printf("    @%-8v task=%-8s version=%d\n",
				e.Offset, specs[e.Task].Name, e.Version)
		}
	}

	// Replay the table with the on-line dispatcher (Figure 1c), building
	// the runtime application from the same spec (TIDs line up with the
	// table because ID assignment is positional).
	eng := sim.NewEngine(3)
	env, err := rt.NewSimEnv(eng, platform.GenericWithGPU(3), nil)
	if err != nil {
		log.Fatal(err)
	}
	app, err := s.Build(core.Config{
		Workers:     2,
		WorkerCores: []int{0, 1},
		Mapping:     core.MappingOffline,
	}, env)
	if err != nil {
		log.Fatal(err)
	}
	if err := app.SetOfflineTable(sched.Table); err != nil {
		log.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(400 * time.Millisecond) // 10 table cycles
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(2 * time.Second)); err != nil {
		log.Fatal(err)
	}
	if err := app.FirstError(); err != nil {
		fmt.Fprintln(os.Stderr, "task error:", err)
	}

	fmt.Println("\ndispatch results (10 cycles):")
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		_, max, avg := st.Response.Summary()
		fmt.Printf("  %-8s jobs=%-4d misses=%d response avg=%v max=%v\n",
			name, st.Jobs, st.Misses, avg.Round(time.Microsecond), max.Round(time.Microsecond))
	}
}
