// The offline-schedule example demonstrates YASMIN's off-line scheduling
// mode (paper Section 3.4): a static time-triggered table is synthesised
// ahead of execution for a small multi-version task set, versions are
// pre-selected by the synthesiser (here minimising energy), and the on-line
// dispatcher then replays the table with delay slots — no scheduler thread,
// no run-time scheduling decisions.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/offline"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func main() {
	// The task set: a sensing -> fusion chain plus two independent tasks;
	// "fusion" and "log" have fast/efficient version pairs.
	specs := []offline.TaskSpec{
		{Name: "sense", Period: 20 * time.Millisecond,
			Versions: []offline.VersionSpec{{WCET: 2 * time.Millisecond, Accel: offline.NoAccelerator, Energy: 2}}},
		{Name: "fusion", Preds: []int{0},
			Versions: []offline.VersionSpec{
				{WCET: 3 * time.Millisecond, Accel: 0, Energy: 9},                     // GPU, fast
				{WCET: 7 * time.Millisecond, Accel: offline.NoAccelerator, Energy: 3}, // CPU, frugal
			}},
		{Name: "control", Period: 10 * time.Millisecond,
			Versions: []offline.VersionSpec{{WCET: 1 * time.Millisecond, Accel: offline.NoAccelerator, Energy: 1}}},
		{Name: "log", Period: 40 * time.Millisecond,
			Versions: []offline.VersionSpec{
				{WCET: 4 * time.Millisecond, Accel: offline.NoAccelerator, Energy: 4},
				{WCET: 2 * time.Millisecond, Accel: 0, Energy: 8},
			}},
	}

	sched, err := offline.Synthesize(specs, 2, 1, offline.MinEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesised table: cycle=%v makespan=%v energy=%.0f mJ/cycle\n",
		sched.Table.Cycle, sched.Makespan, sched.Energy)
	for w, entries := range sched.Table.PerWorker {
		fmt.Printf("  worker %d:\n", w)
		for _, e := range entries {
			fmt.Printf("    @%-8v task=%-8s version=%d\n",
				e.Offset, specs[e.Task].Name, e.Version)
		}
	}

	// Replay the table with the on-line dispatcher (Figure 1c).
	eng := sim.NewEngine(3)
	env, err := rt.NewSimEnv(eng, platform.GenericWithGPU(3), nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Workers:     2,
		WorkerCores: []int{0, 1},
		Mapping:     core.MappingOffline,
		MaxTasks:    8,
	}
	app, err := core.New(cfg, env)
	if err != nil {
		log.Fatal(err)
	}
	// Declare tasks in spec order so TIDs line up with the table. The
	// data-activated "fusion" gets the deadline its synthesis spec implied
	// (its root's period).
	for _, s := range specs {
		deadline := time.Duration(0)
		if s.Period == 0 {
			deadline = 20 * time.Millisecond
		}
		tid, err := app.TaskDecl(core.TData{Name: s.Name, Period: s.Period, Deadline: deadline})
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range s.Versions {
			wcet := v.WCET
			if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
				return x.Compute(wcet)
			}, nil, core.VSelect{WCET: wcet, EnergyBudget: v.Energy}); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Precedence edges exist only in the synthesis spec: the table already
	// sequences fusion after sense, so the dispatcher needs no channels.
	if err := app.SetOfflineTable(sched.Table); err != nil {
		log.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(400 * time.Millisecond) // 10 table cycles
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(2 * time.Second)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndispatch results (10 cycles):")
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		_, max, avg := st.Response.Summary()
		fmt.Printf("  %-8s jobs=%-4d misses=%d response avg=%v max=%v\n",
			name, st.Jobs, st.Misses, avg.Round(time.Microsecond), max.Round(time.Microsecond))
	}
}
