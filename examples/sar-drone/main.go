// The sar-drone example flies the paper's Section 5 Search & Rescue mission:
// the Figure 3b image pipeline plus flight-control handler run under YASMIN
// on a simulated Apalis TK1 (4x Cortex-A15 + Kepler GPU). Boats appear in
// about a third of the frames; detections switch the application into secure
// mode, selecting the AES version of the Encode task, and a report packet is
// radioed to the ground station.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sar"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

func main() {
	eng := sim.NewEngine(2026)
	env, err := rt.NewSimEnv(eng, platform.ApalisTK1(), nil)
	if err != nil {
		log.Fatal(err)
	}
	// Describe the Figure 3b pipeline declaratively, then instantiate the
	// description on the simulated board — the fluent counterpart of the
	// paper's imperative declaration sequence.
	desc, pipeline, err := sar.Describe(sar.Params{
		Versions:       sar.Both, // let the scheduler pick CPU or GPU
		Seed:           7,
		BoatProb:       0.35,
		SecureOnDetect: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := desc.Build(core.Config{
		Workers:        3,
		WorkerCores:    []int{1, 2, 3},
		SchedulerCore:  0,
		Mapping:        core.MappingGlobal,
		Priority:       core.PriorityEDF,
		VersionSelect:  core.SelectMode, // encode: plain vs AES by mode
		Preemption:     true,
		MaxTasks:       16,
		MaxPendingJobs: 256,
	}, env)
	if err != nil {
		log.Fatal(err)
	}

	const mission = 60 * time.Second
	env.Spawn("mission-control", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.SleepUntil(mission)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(mission + time.Minute)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mission complete: %v simulated\n", mission)
	fmt.Printf("frames processed: %d\n", pipeline.FramesProcessed)
	fmt.Printf("boats detected:   %d\n", pipeline.BoatsDetected)
	fmt.Printf("reports radioed:  %d\n", len(pipeline.Sent))
	secure := 0
	for _, pkt := range pipeline.Sent {
		if pkt.Secure {
			secure++
		}
	}
	fmt.Printf("  of which AES-encrypted (secure mode): %d\n", secure)
	if len(pipeline.Sent) > 0 {
		p := pipeline.Sent[0]
		fmt.Printf("first report: frame #%d, %d boat(s) at lat %.5f lon %.5f, speed %.1f m/s\n",
			p.FrameSeq, p.Boats, float64(p.Pos.LatE7)/1e7, float64(p.Pos.LonE7)/1e7,
			float64(p.SpeedMMS)/1000)
	}

	fmt.Println("\nper-task schedule statistics:")
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		_, max, avg := st.Response.Summary()
		fmt.Printf("  %-22s jobs=%-5d misses=%-4d response avg=%v max=%v\n",
			name, st.Jobs, st.Misses, avg.Round(time.Microsecond), max.Round(time.Microsecond))
	}
	if frame := rec.Task("graph:send"); frame != nil {
		_, max, avg := frame.Response.Summary()
		fmt.Printf("\nframe processing time: avg=%v max=%v (deadline %v)\n",
			avg.Round(time.Millisecond), max.Round(time.Millisecond), sar.DefaultFramePeriod)
	}
}
