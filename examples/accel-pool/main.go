// The accel-pool example shows the shared-accelerator story end to end on
// the deterministic simulator:
//
//  1. a 2-instance DSP pool declared once (AccelPool) serves two filter
//     pipelines in parallel — acquisition takes any free instance;
//  2. a single contended GPU forces priority inheritance: a detector job
//     holding the GPU is boosted when the more urgent tracker parks on it,
//     and chains propagate — the detector itself waits for a DSP instance
//     mid-job (ExecCtx.AccelSectionOn), so the boost walks the holder
//     chain;
//  3. the admission guard prices contention: a transaction adding a
//     GPU-hungry batch task is rejected with ErrNotSchedulable naming the
//     PIP blocking term — while the identical CPU-only task is admitted.
//
// The run prints the arbitration counters recorded by the trace layer;
// everything is virtual time, so the output is reproducible byte for byte.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/trace"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func run() error {
	eng := sim.NewEngine(7)
	env, err := rt.NewSimEnv(eng, platform.Generic(4), nil)
	if err != nil {
		return err
	}
	// Partitioned DM: admission runs per-core response-time analysis, where
	// the PIP blocking terms enter natively (the global density bound would
	// be far more conservative). AsyncAccel releases the CPU during
	// accelerator sections, so contention shows up as accelerator parks —
	// and PIP boosts — rather than as a busy worker.
	app, err := core.New(core.Config{
		Workers: 2, Mapping: core.MappingPartitioned, Priority: core.PriorityDM,
		Preemption: true, AsyncAccel: true, RecordAccel: true,
		MaxTasks: 8, MaxAccels: 3, MaxPendingJobs: 32,
	}, env)
	if err != nil {
		return err
	}

	dsp, err := app.HwAccelDeclPool("dsp", 2)
	if err != nil {
		return err
	}
	gpu, err := app.HwAccelDecl("gpu")
	if err != nil {
		return err
	}

	// Two filter pipelines share the DSP pool: with two instances they run
	// their sections truly in parallel.
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("filter%d", i)
		tid, err := app.TaskDecl(core.TData{Name: name, Period: ms(20), Deadline: ms(15), VirtCore: 1})
		if err != nil {
			return err
		}
		vid, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			return x.AccelSection(ms(4))
		}, nil, core.VSelect{WCET: ms(4), AccelCS: ms(4)})
		if err != nil {
			return err
		}
		if err := app.HwAccelUse(tid, vid, dsp); err != nil {
			return err
		}
	}

	// The detector holds the GPU and, mid-job, also needs a DSP instance:
	// a holder chain. The tracker is more urgent and GPU-only — when it
	// parks, the PIP boost reaches the detector and, transitively, any DSP
	// holder the detector waits on.
	det, err := app.TaskDecl(core.TData{Name: "detector", Period: ms(40), Deadline: ms(35), VirtCore: 0})
	if err != nil {
		return err
	}
	dv, err := app.VersionDecl(det, func(x *core.ExecCtx, _ any) error {
		if err := x.AccelSection(ms(6)); err != nil { // GPU part
			return err
		}
		// Post-processing on a DSP instance while still holding the GPU
		// (the version-bound accelerator is released at job completion):
		// this is the holder chain PIP boosts walk.
		return x.AccelSectionOn(dsp, ms(1))
	}, nil, core.VSelect{WCET: ms(7), AccelCS: ms(6)})
	if err != nil {
		return err
	}
	if err := app.HwAccelUse(det, dv, gpu); err != nil {
		return err
	}
	trk, err := app.TaskDecl(core.TData{Name: "tracker", Period: ms(10), Deadline: ms(8), ReleaseOffset: ms(1), VirtCore: 0})
	if err != nil {
		return err
	}
	tv, err := app.VersionDecl(trk, func(x *core.ExecCtx, _ any) error {
		return x.AccelSection(ms(1))
	}, nil, core.VSelect{WCET: ms(1), AccelCS: ms(1)})
	if err != nil {
		return err
	}
	if err := app.HwAccelUse(trk, tv, gpu); err != nil {
		return err
	}

	env.Spawn("mission", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Printf("start: %v", err)
			return
		}
		c.SleepUntil(ms(100))

		// Admission guard: a batch task with a 7.5ms GPU critical section
		// would block the 8ms-deadline tracker for up to 7.5ms (R = 1 +
		// 7.5 > 8) — rejected, with the blocking term named.
		err := app.Reconfigure(c, func(tx *core.Reconfig) error {
			id, err := tx.AddTask(core.TData{Name: "batch", Period: ms(200), VirtCore: 1})
			if err != nil {
				return err
			}
			vid, err := tx.AddVersion(id, func(x *core.ExecCtx, _ any) error {
				return x.AccelSection(7500 * time.Microsecond)
			}, nil, core.VSelect{WCET: ms(8), AccelCS: 7500 * time.Microsecond})
			if err != nil {
				return err
			}
			return tx.UseAccel(id, vid, gpu)
		})
		switch {
		case err == nil:
			fmt.Println("UNEXPECTED: GPU-hungry batch task admitted")
		case errors.Is(err, core.ErrNotSchedulable):
			fmt.Printf("batch on gpu rejected: %v\n", err)
		default:
			fmt.Printf("UNEXPECTED error: %v\n", err)
		}

		// The same demand without the shared GPU is fine.
		err = app.Reconfigure(c, func(tx *core.Reconfig) error {
			id, err := tx.AddTask(core.TData{Name: "batch-cpu", Period: ms(200), VirtCore: 1})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *core.ExecCtx, _ any) error {
				return x.Compute(ms(8))
			}, nil, core.VSelect{WCET: ms(8)})
			return err
		})
		if err != nil {
			fmt.Printf("UNEXPECTED: CPU twin rejected: %v\n", err)
		} else {
			fmt.Println("batch-cpu admitted: the rejection above was purely the blocking term")
		}

		c.SleepUntil(ms(400))
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Infinity); err != nil {
		return err
	}

	// Arbitration summary from the trace events.
	acquires, parks, boosts := 0, 0, 0
	instances := map[string]bool{}
	for _, e := range app.Recorder().AccelEvents() {
		switch e.Kind {
		case trace.AccelAcquire, trace.AccelGrant:
			acquires++
			instances[e.Accel] = true
		case trace.AccelPark:
			parks++
		case trace.AccelBoost:
			boosts++
		}
	}
	fmt.Printf("arbitration: %d acquisitions over %d instances, %d parks, %d PIP boosts\n",
		acquires, len(instances), parks, boosts)
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		_, max, _ := st.Response.Summary()
		fmt.Printf("task %-10s jobs=%-3d misses=%-2d worst-response=%v\n", name, st.Jobs, st.Misses, max)
	}
	fmt.Printf("totals: %d jobs, %d deadline misses\n", rec.TotalJobs(), rec.TotalMisses())
	if err := app.FirstError(); err != nil {
		return fmt.Errorf("task error: %w", err)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
