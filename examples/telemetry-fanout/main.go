// Telemetry-fanout demonstrates the typed pub-sub messaging layer on a
// deterministic simulated platform: topics connecting N publishers to M
// subscribers with per-topic priority, capacity and overflow policy,
// accessed through compile-time-typed ports.
//
// The application models a small vehicle computer:
//
//   - 1→N fan-out: an IMU task publishes sensor readings on "imu"
//     (Latest/conflating, capacity 1). Two subscribers at very different
//     rates share the one buffered reading — the 100 Hz stabiliser always
//     sees the freshest sample, the 5 Hz logger conflates the ~20 samples
//     published in between down to the newest. No per-subscriber copies.
//   - N→1 fan-in: four zone sensors publish events into "events"
//     (DropOldest, capacity 16) and rare alarms into "alerts" (Reject,
//     capacity 4, priority 0). One aggregator drains both subscriptions
//     with TakeAny, which honours topic priority: alerts always leave the
//     queue before bulk events.
//
// Everything runs in virtual time under SimEnv, so the output is identical
// on every run — `go run ./examples/telemetry-fanout` prints a reproducible
// trace of the delivery behaviour.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin"
)

// Reading is an IMU sample.
type Reading struct {
	Seq  int64
	Roll float64
}

// Event is a zone-sensor report.
type Event struct {
	Zone int
	Seq  int64
	Warn bool
}

func main() {
	b := yasmin.NewApp("telemetry-fanout")

	// Topics first: channels and topics share the positional CID space.
	imu := b.Topic("imu", yasmin.TopicOpts{Capacity: 1, Policy: yasmin.Latest, Priority: 1})
	events := b.Topic("events", yasmin.TopicOpts{Capacity: 16, Policy: yasmin.DropOldest, Priority: 5})
	alerts := b.Topic("alerts", yasmin.TopicOpts{Capacity: 4, Policy: yasmin.Reject, Priority: 0})

	// Typed ports over the raw CIDs: direction and element type checked at
	// compile time, captured by the version closures below.
	imuOut := yasmin.PubOf[Reading](imu)
	imuStab := yasmin.SubOf[Reading](imu)
	imuLog := yasmin.SubOf[Reading](imu)
	evOut := yasmin.PubOf[Event](events)
	alOut := yasmin.PubOf[Event](alerts)

	// --- 1→N: IMU at 1 kHz, stabiliser at 100 Hz, logger at 5 Hz. ---
	var published int64
	b.Task("imu").Period(time.Millisecond).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(20 * time.Microsecond); err != nil {
				return err
			}
			published++
			return yasmin.Send(x, imuOut, Reading{Seq: published, Roll: float64(published) / 1000})
		}, yasmin.VSelect{}).
		Publishes("imu")

	var stabTaken, stabGaps int64
	var stabLast int64
	b.Task("stabiliser").Period(10*time.Millisecond).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(100 * time.Microsecond); err != nil {
				return err
			}
			r, ok, err := yasmin.Recv(x, imuStab)
			if err != nil || !ok {
				return err
			}
			stabTaken++
			if stabLast != 0 && r.Seq != stabLast+1 {
				stabGaps++ // conflation skipped samples — expected at 100 Hz vs 1 kHz
			}
			stabLast = r.Seq
			return nil
		}, yasmin.VSelect{}).
		Subscribes("imu")

	var logTaken int64
	var logSeqs []int64
	b.Task("logger").Period(200*time.Millisecond).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(500 * time.Microsecond); err != nil {
				return err
			}
			r, ok, err := yasmin.Recv(x, imuLog)
			if err != nil || !ok {
				return err
			}
			logTaken++
			logSeqs = append(logSeqs, r.Seq)
			return nil
		}, yasmin.VSelect{}).
		Subscribes("imu")

	// --- N→1: four zone sensors into one aggregator. ---
	for zone := 0; zone < 4; zone++ {
		zone := zone
		var seq int64
		b.Task(fmt.Sprintf("zone%d", zone)).Period(25*time.Millisecond).
			Offset(time.Duration(zone)*time.Millisecond).
			Version(func(x *yasmin.ExecCtx, _ any) error {
				if err := x.Compute(50 * time.Microsecond); err != nil {
					return err
				}
				seq++
				// Every 8th report of zone 3 is an alarm: it goes on the
				// high-priority Reject topic instead of the bulk stream.
				if zone == 3 && seq%8 == 0 {
					return yasmin.Send(x, alOut, Event{Zone: zone, Seq: seq, Warn: true})
				}
				return yasmin.Send(x, evOut, Event{Zone: zone, Seq: seq})
			}, yasmin.VSelect{}).
			Publishes("events", "alerts")
	}

	var bulk, warned int64
	var alertFirst = true
	lastZoneSeq := map[int]int64{}
	orderOK := true
	b.Task("aggregator").Period(50*time.Millisecond).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(200 * time.Microsecond); err != nil {
				return err
			}
			seenBulkThisJob := false
			for {
				from, v, ok, err := x.TakeAny() // all subscriptions, priority order
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				e := v.(Event)
				if from == alerts {
					warned++
					// Priority: an alert must never come out after a bulk
					// event within the same drain.
					if seenBulkThisJob {
						alertFirst = false
					}
				} else {
					bulk++
					seenBulkThisJob = true
					// Per-publisher FIFO: each zone's sequence numbers
					// arrive strictly increasing.
					if last := lastZoneSeq[e.Zone]; e.Seq <= last {
						orderOK = false
					}
					lastZoneSeq[e.Zone] = e.Seq
				}
			}
		}, yasmin.VSelect{}).
		Subscribes("events", "alerts")

	// Run for 2 simulated seconds on the Odroid-XU4 model.
	eng := yasmin.NewEngine(1)
	env, err := yasmin.NewSimEnv(eng, yasmin.OdroidXU4(), nil)
	if err != nil {
		log.Fatal(err)
	}
	app, err := b.Build(yasmin.Config{
		Workers:     4,
		WorkerCores: []int{4, 5, 6, 7}, SchedulerCore: 0,
		Priority:   yasmin.PriorityRM,
		Preemption: true,
	}, env)
	if err != nil {
		log.Fatal(err)
	}
	env.Spawn("main", yasmin.UnpinnedCore, func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(2 * time.Second)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(yasmin.SimTime(10 * time.Second)); err != nil {
		log.Fatal(err)
	}
	if err := app.FirstError(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== 1→N fan-out: imu (Latest, cap 1) ===")
	fmt.Printf("published=%d  stabiliser took=%d (gaps=%d: conflation at 100 Hz)  logger took=%d\n",
		published, stabTaken, stabGaps, logTaken)
	fmt.Printf("logger saw seqs %v — one shared buffer entry, each subscriber its own cursor\n", logSeqs)
	fmt.Printf("conflated (overwritten) samples: %d\n", app.TopicDropped(imu))

	fmt.Println("\n=== N→1 fan-in: events (DropOldest) + alerts (Reject, priority 0) ===")
	fmt.Printf("aggregated bulk=%d  alerts=%d  per-zone FIFO order intact=%v  alerts drained first=%v\n",
		bulk, warned, orderOK, alertFirst)

	for _, name := range []string{"imu", "stabiliser", "logger", "aggregator"} {
		st := app.Recorder().Task(name)
		min, max, avg := st.Response.Summary()
		fmt.Printf("%-11s jobs=%-5d misses=%d response <%v, %v, %v>\n",
			name, st.Jobs, st.Misses, min, max, avg)
	}
}
