// The design-exploration example shows the workflow the paper's
// introduction motivates: given one application, sweep the scheduling
// design space — mapping scheme x priority assignment x waiting strategy —
// by "recompiling" with different configurations (in Go: constructing Apps
// with different Configs), and compare deadline misses and response times
// to pick the best deployment. RT experts and non-experts alike can explore
// without touching application code.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/yasmin-rt/yasmin/internal/analysis"
	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

func main() {
	// One synthetic application: 12 tasks at 80% total utilisation on two
	// big cores.
	set, err := taskset.Generate(rand.New(rand.NewSource(99)), taskset.DRSConfig{
		N:                12,
		TotalUtilization: 1.6,
		PeriodMin:        20 * time.Millisecond,
		PeriodMax:        200 * time.Millisecond,
		DeadlineFactor:   0.9, // constrained deadlines
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d tasks, U=%.2f, hyperperiod=%v\n",
		set.Len(), set.TotalUtilization(), set.Hyperperiod())

	// A quick analytical sanity check before simulating.
	if ok := analysis.GlobalEDFGFBTest(set, 2); ok {
		fmt.Println("GFB test: schedulable under G-EDF on 2 cores (sufficient test)")
	} else {
		fmt.Println("GFB test: inconclusive for G-EDF on 2 cores (test is only sufficient)")
	}

	type config struct {
		name    string
		mapping core.MappingScheme
		prio    core.PriorityAssignment
		wait    core.WaitStrategy
		lock    core.LockChoice
	}
	configs := []config{
		{"G-EDF  sleep posix", core.MappingGlobal, core.PriorityEDF, core.WaitSleep, core.LockPOSIX},
		{"G-RM   sleep posix", core.MappingGlobal, core.PriorityRM, core.WaitSleep, core.LockPOSIX},
		{"G-DM   spin  lockfree", core.MappingGlobal, core.PriorityDM, core.WaitSpin, core.LockFree},
		{"P-EDF  sleep posix", core.MappingPartitioned, core.PriorityEDF, core.WaitSleep, core.LockPOSIX},
		{"P-DM   sleep posix", core.MappingPartitioned, core.PriorityDM, core.WaitSleep, core.LockPOSIX},
	}

	// For partitioned configs, bin-pack tasks onto the two workers.
	bins, err := analysis.Partition(set, 2, analysis.UtilizationFits(1.0))
	if err != nil {
		log.Fatal(err)
	}
	virtCore := make(map[int]int, set.Len())
	for w, tasks := range bins {
		for _, ti := range tasks {
			virtCore[ti] = w
		}
	}

	fmt.Printf("\n%-24s %10s %10s %12s %12s\n", "configuration", "jobs", "misses", "avg resp", "max resp")
	for _, cc := range configs {
		app := runOne(set, cc.mapping, cc.prio, cc.wait, cc.lock, virtCore)
		rec := app.Recorder()
		var avgSum time.Duration
		var worst time.Duration
		names := rec.TaskNames()
		for _, n := range names {
			st := rec.Task(n)
			_, max, avg := st.Response.Summary()
			avgSum += avg
			if max > worst {
				worst = max
			}
		}
		avg := time.Duration(0)
		if len(names) > 0 {
			avg = avgSum / time.Duration(len(names))
		}
		fmt.Printf("%-24s %10d %10d %12v %12v\n",
			cc.name, rec.TotalJobs(), rec.TotalMisses(),
			avg.Round(time.Microsecond), worst.Round(time.Microsecond))
	}
	fmt.Println("\nswitching policies never touched the task code — only the Config.")
}

func runOne(set *taskset.Set, mapping core.MappingScheme, prio core.PriorityAssignment,
	wait core.WaitStrategy, lock core.LockChoice, virtCore map[int]int) *core.App {
	eng := sim.NewEngine(42)
	env, err := rt.NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Workers:       2,
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Mapping:       mapping,
		Priority:      prio,
		Wait:          wait,
		Lock:          lock,
		Preemption:    true,
		MaxTasks:      set.Len(),
	}
	app, err := core.New(cfg, env)
	if err != nil {
		log.Fatal(err)
	}
	for i := range set.Tasks {
		tk := &set.Tasks[i]
		d := core.TData{Name: tk.Name, Period: tk.Period, Deadline: tk.Deadline}
		if mapping == core.MappingPartitioned {
			d.VirtCore = virtCore[i]
		}
		tid, err := app.TaskDecl(d)
		if err != nil {
			log.Fatal(err)
		}
		wcet := tk.WCET
		if _, err := app.VersionDecl(tid, func(x *core.ExecCtx, _ any) error {
			return x.Compute(wcet)
		}, nil, core.VSelect{WCET: wcet}); err != nil {
			log.Fatal(err)
		}
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(2 * time.Second)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(10 * time.Second)); err != nil {
		log.Fatal(err)
	}
	return app
}
