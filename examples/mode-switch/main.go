// The mode-switch example flies the Search & Rescue mission of the paper's
// Section 5 as a sequence of live reconfigurations: instead of the
// stop-the-world Stop/re-declare/Start cycle, every phase change is one
// admitted transaction (App.SwitchMode) that retires the leaving pipeline,
// admits the entering one and never stops the always-on tasks — telemetry
// keeps publishing across every epoch and the ground-station monitor loses
// not a single entry.
//
// The mission also demonstrates the admission guard: an "overload" task
// whose demand cannot fit the platform is rejected with ErrNotSchedulable
// naming the task, while the running mission continues unchanged. The whole
// flight runs twice under the deterministic simulator; the report must be
// byte-identical.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
)

const (
	missionLen = 6 * time.Second
	uplinkCap  = 16
)

// flight runs one complete mission and returns its report.
func flight() (string, error) {
	eng := sim.NewEngine(2026)
	env, err := rt.NewSimEnv(eng, platform.ApalisTK1(), nil)
	if err != nil {
		return "", err
	}

	// Ground-station uplink: telemetry publishes a sequence number every
	// 50ms, the monitor drains the backlog. Reject policy: entries must
	// survive every mode switch — a gap would mean the epoch dropped
	// in-flight state.
	var seq int
	var received []int
	b := spec.NewApp("sar-mission")
	// Channels first (CIDs are positional, channels before topics): the
	// Figure 3b pipeline edges.
	cd := b.Channel("camera->detect", 4)
	de := b.Channel("detect->encode", 4)
	es := b.Channel("encode->send", 4)
	b.Connect("camera", "detect", cd)
	b.Connect("detect", "encode", de)
	b.Connect("encode", "send", es)
	uplink := b.Topic("uplink", core.TopicOpts{Capacity: uplinkCap})

	tb := b.Task("telemetry").Period(50*time.Millisecond).
		Version(func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(time.Millisecond); err != nil {
				return err
			}
			seq++
			return x.Publish(uplink, seq)
		}, core.VSelect{WCET: time.Millisecond}).
		Publishes("uplink")
	tb = tb.Task("monitor").Period(100*time.Millisecond).
		Version(func(x *core.ExecCtx, _ any) error {
			if err := x.Compute(time.Millisecond); err != nil {
				return err
			}
			for {
				v, ok, err := x.Take(uplink)
				if err != nil || !ok {
					return err
				}
				received = append(received, v.(int))
			}
		}, core.VSelect{WCET: time.Millisecond}).
		Subscribes("uplink")

	// Transit phase: navigation only.
	tb = tb.Task("nav").Period(20*time.Millisecond).
		Version(nil, core.VSelect{WCET: 2 * time.Millisecond})
	// Search phase: the Figure 3b image pipeline (camera -> detect ->
	// encode -> send), synthesized from WCETs.
	tb = tb.Task("camera").Period(33*time.Millisecond).
		Version(nil, core.VSelect{WCET: 2 * time.Millisecond})
	tb = tb.Task("detect").
		Version(nil, core.VSelect{WCET: 9 * time.Millisecond})
	tb = tb.Task("encode").
		Version(nil, core.VSelect{WCET: 3 * time.Millisecond})
	tb = tb.Task("send").
		Version(nil, core.VSelect{WCET: time.Millisecond})
	// Rescue phase: the pipeline plus a high-rate tracker.
	tb = tb.Task("tracker").Period(33*time.Millisecond).
		Version(nil, core.VSelect{WCET: 6 * time.Millisecond})

	tb.Mode("transit", 0, "telemetry", "monitor", "nav").
		Mode("search", 1, "telemetry", "monitor", "camera", "detect", "encode", "send").
		Mode("rescue", 2, "telemetry", "monitor", "camera", "detect", "encode", "send", "tracker")

	app, err := tb.Build(core.Config{
		Workers:        3,
		WorkerCores:    []int{1, 2, 3},
		SchedulerCore:  0,
		Mapping:        core.MappingGlobal,
		Priority:       core.PriorityEDF,
		Preemption:     true,
		MaxTasks:       16,
		MaxChannels:    16,
		MaxPendingJobs: 256,
	}, env)
	if err != nil {
		return "", err
	}

	var report strings.Builder
	var flightErr error
	env.Spawn("mission-control", rt.UnpinnedCore, func(c rt.Ctx) {
		fail := func(format string, args ...any) {
			flightErr = fmt.Errorf(format, args...)
		}
		// Take off in transit mode: the search/rescue pipelines are retired
		// before the first job releases.
		if err := app.SwitchMode(c, "transit"); err != nil {
			fail("enter transit: %w", err)
			return
		}
		if err := app.Start(c); err != nil {
			fail("start: %w", err)
			return
		}
		phases := []struct {
			at   time.Duration
			mode string
		}{
			{2 * time.Second, "search"},
			{4 * time.Second, "rescue"},
			{5 * time.Second, "transit"},
		}
		for _, ph := range phases {
			c.SleepUntil(ph.at)
			if err := app.SwitchMode(c, ph.mode); err != nil {
				fail("switch to %s at %v: %w", ph.mode, ph.at, err)
				return
			}
			fmt.Fprintf(&report, "t=%-4v phase -> %-8s (epoch %d)\n", ph.at, ph.mode, app.Epoch())
		}
		// Mid-rescue the operator asks for an infeasible extra workload:
		// admission rejects it, names the offender, and the mission flies on.
		c.SleepUntil(5500 * time.Millisecond)
		err := app.Reconfigure(c, func(tx *core.Reconfig) error {
			id, err := tx.AddTask(core.TData{Name: "overload", Period: 20 * time.Millisecond})
			if err != nil {
				return err
			}
			_, err = tx.AddVersion(id, func(x *core.ExecCtx, _ any) error {
				return x.Compute(40 * time.Millisecond)
			}, nil, core.VSelect{WCET: 40 * time.Millisecond})
			return err
		})
		var nse *core.NotSchedulableError
		switch {
		case err == nil:
			fail("overload transaction was admitted; want rejection")
			return
		case !errors.Is(err, core.ErrNotSchedulable) || !errors.As(err, &nse):
			fail("overload rejection has wrong type: %w", err)
			return
		default:
			fmt.Fprintf(&report, "t=5.5s REJECTED %q by %s — mission continues\n", nse.Task, nse.Test)
		}
		c.SleepUntil(missionLen)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(missionLen + time.Minute)); err != nil {
		return "", err
	}
	if flightErr != nil {
		return "", flightErr
	}
	if err := app.FirstError(); err != nil {
		return "", fmt.Errorf("task error: %w", err)
	}

	// The uplink must be gap-free: every sequence number the telemetry
	// published reached the monitor in order, across all four epochs.
	gaps := 0
	for i, v := range received {
		if v != i+1 {
			gaps++
		}
	}
	fmt.Fprintf(&report, "uplink: published=%d received=%d gaps=%d\n", seq, len(received), gaps)
	if gaps > 0 {
		return "", fmt.Errorf("uplink lost entries across reconfigurations:\n%s", report.String())
	}

	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		fmt.Fprintf(&report, "  %-12s jobs=%-4d misses=%d\n", name, st.Jobs, st.Misses)
	}
	for _, rc := range rec.Reconfigs() {
		fmt.Fprintf(&report, "epoch %d at %-8v admitted=%v retiring=%v pause=%v\n",
			rc.Epoch, rc.At, rc.Admitted, rc.Retiring, rc.Pause)
	}
	tele := rec.Task("telemetry")
	if tele == nil || tele.Jobs < int64(missionLen/(50*time.Millisecond))-1 {
		return "", fmt.Errorf("telemetry interrupted: %+v", tele)
	}
	return report.String(), nil
}

func main() {
	first, err := flight()
	if err != nil {
		log.Fatal(err)
	}
	second, err := flight()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(first)
	if first == second {
		fmt.Println("deterministic: report byte-identical across two flights")
	} else {
		log.Fatalf("NON-DETERMINISTIC reconfiguration:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
