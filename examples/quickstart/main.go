// Quickstart reproduces the paper's Listings 1 and 2: a diamond task graph
// (fork -> {left, right} -> join) connected by FIFO channels, where the
// "left" task has two versions — one on the CPU and one using a hardware
// accelerator — selected at run time by the current battery level.
//
// It runs twice: once in deterministic virtual time (the simulation backend
// used by all paper experiments), and once in wall-clock time as an
// ordinary Go program (the best-effort OS backend).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
)

// buildDiamond declares the Listing 2 application on an App.
func buildDiamond(app *core.App, battery func() float64) error {
	// Listing 1's config.h constants correspond to core.Config (set by the
	// callers below). Channels first, like the C listing:
	fl, err := app.ChannelDecl("fl", 0) // pure dependency, no data
	if err != nil {
		return err
	}
	fr, err := app.ChannelDecl("fr", 1)
	if err != nil {
		return err
	}
	rj, err := app.ChannelDecl("rj", 2)
	if err != nil {
		return err
	}
	lj, err := app.ChannelDecl("lj", 1)
	if err != nil {
		return err
	}

	fork, err := app.TaskDecl(core.TData{Name: "fork", Period: 250 * time.Millisecond})
	if err != nil {
		return err
	}
	left, err := app.TaskDecl(core.TData{Name: "left"})
	if err != nil {
		return err
	}
	right, err := app.TaskDecl(core.TData{Name: "right"})
	if err != nil {
		return err
	}
	join, err := app.TaskDecl(core.TData{Name: "join"})
	if err != nil {
		return err
	}

	type token struct{ value int }

	if _, err := app.VersionDecl(fork, func(x *core.ExecCtx, _ any) error {
		if err := x.Compute(200 * time.Microsecond); err != nil {
			return err
		}
		if err := x.Push(fl, nil); err != nil {
			return err
		}
		return x.Push(fr, token{value: 2})
	}, nil, core.VSelect{}); err != nil {
		return err
	}

	if _, err := app.VersionDecl(right, func(x *core.ExecCtx, _ any) error {
		v, err := x.Pop(fr)
		if err != nil {
			return err
		}
		rec := v.(token)
		if err := x.Compute(300 * time.Microsecond); err != nil {
			return err
		}
		if err := x.Push(rj, rec.value); err != nil {
			return err
		}
		return x.Push(rj, rec.value*2)
	}, nil, core.VSelect{}); err != nil {
		return err
	}

	// left has two versions; YASMIN selects by energy (Listing 1:
	// VERSION_SELECTION ENERGY). v1 is the cheap CPU version, v2 the
	// accelerator version, affordable only above 40% battery.
	lv1 := core.VSelect{EnergyBudget: 5, Quality: 1, GetBatteryStatus: battery}
	lv2 := core.VSelect{EnergyBudget: 12, Quality: 9, MinBattery: 40, GetBatteryStatus: battery}
	if _, err := app.VersionDecl(left, func(x *core.ExecCtx, _ any) error {
		if err := x.Compute(800 * time.Microsecond); err != nil {
			return err
		}
		return x.Push(lj, 7)
	}, nil, lv1); err != nil {
		return err
	}
	lv2id, err := app.VersionDecl(left, func(x *core.ExecCtx, _ any) error {
		if err := x.Compute(100 * time.Microsecond); err != nil {
			return err
		}
		if err := x.AccelSection(200 * time.Microsecond); err != nil {
			return err
		}
		return x.Push(lj, 7)
	}, nil, lv2)
	if err != nil {
		return err
	}
	accel, err := app.HwAccelDecl("quantum_rand_num_generator")
	if err != nil {
		return err
	}
	if err := app.HwAccelUse(left, lv2id, accel); err != nil {
		return err
	}

	if _, err := app.VersionDecl(join, func(x *core.ExecCtx, _ any) error {
		a, err := x.Pop(rj)
		if err != nil {
			return err
		}
		b, err := x.Pop(rj)
		if err != nil {
			return err
		}
		l, err := x.Pop(lj)
		if err != nil {
			return err
		}
		return x.Compute(time.Duration(100+a.(int)+b.(int)+l.(int)) * time.Microsecond)
	}, nil, core.VSelect{}); err != nil {
		return err
	}

	if err := app.ChannelConnect(fork, left, fl); err != nil {
		return err
	}
	if err := app.ChannelConnect(fork, right, fr); err != nil {
		return err
	}
	if err := app.ChannelConnect(right, join, rj); err != nil {
		return err
	}
	return app.ChannelConnect(left, join, lj)
}

func report(label string, app *core.App) {
	fmt.Printf("\n=== %s ===\n", label)
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		min, max, avg := st.Response.Summary()
		fmt.Printf("%-12s jobs=%-4d misses=%-3d response <%v, %v, %v> versions=%v\n",
			name, st.Jobs, st.Misses, min, max, avg, st.Versions)
	}
}

func main() {
	// --- Run 1: deterministic virtual time on a simulated Odroid-XU4. ---
	eng := sim.NewEngine(1)
	env, err := rt.NewSimEnv(eng, platform.OdroidXU4(), nil)
	if err != nil {
		log.Fatal(err)
	}
	battery, err := platform.NewBattery(2000)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Workers:       2, // THREADS_SIZE 2 (Listing 1)
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Mapping:       core.MappingGlobal, // MAPPING_SCHEME GLOBAL
		Priority:      core.PriorityEDF,   // PRIORITY_ASSIGNMENT EDF
		VersionSelect: core.SelectEnergy,  // VERSION_SELECTION ENERGY
	}
	app, err := core.New(cfg, env)
	if err != nil {
		log.Fatal(err)
	}
	app.SetBattery(battery)
	if err := buildDiamond(app, battery.Level); err != nil {
		log.Fatal(err)
	}
	env.Spawn("main", rt.UnpinnedCore, func(c rt.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(2 * time.Second) // high battery: accelerator version runs
		if err := battery.SetLevel(15); err != nil {
			log.Println(err)
		}
		c.Sleep(2 * time.Second) // low battery: CPU version takes over
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(sim.Time(10 * time.Second)); err != nil {
		log.Fatal(err)
	}
	report("virtual time (simulated Odroid-XU4)", app)
	fmt.Printf("battery left: %.1f%%\n", battery.Level())

	// --- Run 2: wall-clock time as a plain Go program. ---
	osEnv := rt.NewOSEnv()
	osEnv.Spin = false // model the load without burning a laptop core
	battery2, err := platform.NewBattery(2000)
	if err != nil {
		log.Fatal(err)
	}
	cfg2 := core.Config{Workers: 2, VersionSelect: core.SelectEnergy}
	app2, err := core.New(cfg2, osEnv)
	if err != nil {
		log.Fatal(err)
	}
	app2.SetBattery(battery2)
	if err := buildDiamond(app2, battery2.Level); err != nil {
		log.Fatal(err)
	}
	osEnv.RunMain(func(c rt.Ctx) {
		if err := app2.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(1 * time.Second)
		app2.Stop(c)
		app2.Cleanup(c)
	})
	osEnv.Wait()
	report("wall clock (Go runtime, soft real-time)", app2)
}
