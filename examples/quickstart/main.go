// Quickstart reproduces the paper's Listings 1 and 2: a diamond task graph
// (fork -> {left, right} -> join) connected by FIFO channels, where the
// "left" task has two versions — one on the CPU and one using a hardware
// accelerator — selected at run time by the current battery level.
//
// The application is described with the fluent builder API (yasmin.NewApp):
// channels and tasks chain into one declaration, errors accumulate and
// surface once at Build instead of after every call, and the same
// description instantiates on any environment. It runs twice: once in
// deterministic virtual time (the simulation backend used by all paper
// experiments), and once in wall-clock time as an ordinary Go program (the
// best-effort OS backend).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/yasmin-rt/yasmin"
)

// describeDiamond declares the Listing 2 application fluently. The builder
// assigns channel IDs deterministically, so version bodies capture them
// before Build ever runs.
func describeDiamond(battery func() float64) *yasmin.Builder {
	b := yasmin.NewApp("diamond")

	// Channels first, like the C listing (fl is a pure dependency, no data).
	fl := b.Channel("fl", 0)
	fr := b.Channel("fr", 1)
	rj := b.Channel("rj", 2)
	lj := b.Channel("lj", 1)
	b.Connect("fork", "left", fl).
		Connect("fork", "right", fr).
		Connect("right", "join", rj).
		Connect("left", "join", lj)

	type token struct{ value int }

	// left has two versions; YASMIN selects by energy (Listing 1:
	// VERSION_SELECTION ENERGY). v1 is the cheap CPU version, v2 the
	// accelerator version, affordable only above 40% battery.
	lv1 := yasmin.VSelect{EnergyBudget: 5, Quality: 1, GetBatteryStatus: battery}
	lv2 := yasmin.VSelect{EnergyBudget: 12, Quality: 9, MinBattery: 40, GetBatteryStatus: battery}

	b.Task("fork").Period(250*time.Millisecond).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(200 * time.Microsecond); err != nil {
				return err
			}
			if err := x.Push(fl, nil); err != nil {
				return err
			}
			return x.Push(fr, token{value: 2})
		}, yasmin.VSelect{}).
		Task("left").
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(800 * time.Microsecond); err != nil {
				return err
			}
			return x.Push(lj, 7)
		}, lv1).
		Version(func(x *yasmin.ExecCtx, _ any) error {
			if err := x.Compute(100 * time.Microsecond); err != nil {
				return err
			}
			if err := x.AccelSection(200 * time.Microsecond); err != nil {
				return err
			}
			return x.Push(lj, 7)
		}, lv2).
		OnAccel("quantum_rand_num_generator").
		Task("right").
		Version(func(x *yasmin.ExecCtx, _ any) error {
			v, err := x.Pop(fr)
			if err != nil {
				return err
			}
			rec := v.(token)
			if err := x.Compute(300 * time.Microsecond); err != nil {
				return err
			}
			if err := x.Push(rj, rec.value); err != nil {
				return err
			}
			return x.Push(rj, rec.value*2)
		}, yasmin.VSelect{}).
		Task("join").
		Version(func(x *yasmin.ExecCtx, _ any) error {
			a, err := x.Pop(rj)
			if err != nil {
				return err
			}
			b, err := x.Pop(rj)
			if err != nil {
				return err
			}
			l, err := x.Pop(lj)
			if err != nil {
				return err
			}
			return x.Compute(time.Duration(100+a.(int)+b.(int)+l.(int)) * time.Microsecond)
		}, yasmin.VSelect{})

	return b
}

func report(label string, app *yasmin.App) {
	fmt.Printf("\n=== %s ===\n", label)
	rec := app.Recorder()
	for _, name := range rec.TaskNames() {
		st := rec.Task(name)
		min, max, avg := st.Response.Summary()
		fmt.Printf("%-12s jobs=%-4d misses=%-3d response <%v, %v, %v> versions=%v\n",
			name, st.Jobs, st.Misses, min, max, avg, st.Versions)
	}
}

func main() {
	// --- Run 1: deterministic virtual time on a simulated Odroid-XU4. ---
	eng := yasmin.NewEngine(1)
	env, err := yasmin.NewSimEnv(eng, yasmin.OdroidXU4(), nil)
	if err != nil {
		log.Fatal(err)
	}
	battery, err := yasmin.NewBattery(2000)
	if err != nil {
		log.Fatal(err)
	}
	app, err := describeDiamond(battery.Level).Build(yasmin.Config{
		Workers:       2, // THREADS_SIZE 2 (Listing 1)
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Mapping:       yasmin.MappingGlobal, // MAPPING_SCHEME GLOBAL
		Priority:      yasmin.PriorityEDF,   // PRIORITY_ASSIGNMENT EDF
		VersionSelect: yasmin.SelectEnergy,  // VERSION_SELECTION ENERGY
	}, env)
	if err != nil {
		log.Fatal(err)
	}
	app.SetBattery(battery)
	env.Spawn("main", yasmin.UnpinnedCore, func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(2 * time.Second) // high battery: accelerator version runs
		if err := battery.SetLevel(15); err != nil {
			log.Println(err)
		}
		c.Sleep(2 * time.Second) // low battery: CPU version takes over
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(yasmin.SimTime(10 * time.Second)); err != nil {
		log.Fatal(err)
	}
	report("virtual time (simulated Odroid-XU4)", app)
	fmt.Printf("battery left: %.1f%%\n", battery.Level())

	// --- Run 2: wall-clock time as a plain Go program. ---
	osEnv := yasmin.NewOSEnv()
	osEnv.Spin = false // model the load without burning a laptop core
	battery2, err := yasmin.NewBattery(2000)
	if err != nil {
		log.Fatal(err)
	}
	app2, err := describeDiamond(battery2.Level).
		Build(yasmin.Config{Workers: 2, VersionSelect: yasmin.SelectEnergy}, osEnv)
	if err != nil {
		log.Fatal(err)
	}
	app2.SetBattery(battery2)
	osEnv.RunMain(func(c yasmin.Ctx) {
		if err := app2.Start(c); err != nil {
			log.Println("start:", err)
			return
		}
		c.Sleep(1 * time.Second)
		app2.Stop(c)
		app2.Cleanup(c)
	})
	osEnv.Wait()
	report("wall clock (Go runtime, soft real-time)", app2)
}
