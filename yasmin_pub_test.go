package yasmin_test

// Public-API conformance tests: everything here goes through the yasmin
// facade only, the way an importing project would.

import (
	"strings"
	"testing"
	"time"

	"github.com/yasmin-rt/yasmin"
)

func TestFacadeSimulatedRun(t *testing.T) {
	eng := yasmin.NewEngine(5)
	env, err := yasmin.NewSimEnv(eng, yasmin.OdroidXU4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := yasmin.New(yasmin.Config{
		Workers:       2,
		WorkerCores:   []int{4, 5},
		SchedulerCore: 6,
		Mapping:       yasmin.MappingGlobal,
		Priority:      yasmin.PriorityEDF,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := app.TaskDecl(yasmin.TData{Name: "tick", Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, func(x *yasmin.ExecCtx, _ any) error {
		return x.Compute(time.Millisecond)
	}, nil, yasmin.VSelect{}); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", -1, func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(100 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(1 << 62); err != nil {
		t.Fatal(err)
	}
	st := app.Recorder().Task("tick")
	if st == nil || st.Jobs < 9 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeWallClockRun(t *testing.T) {
	env := yasmin.NewOSEnv()
	env.Spin = false
	app, err := yasmin.New(yasmin.Config{Workers: 2}, env)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := app.TaskDecl(yasmin.TData{Name: "t", Period: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.VersionDecl(tid, func(x *yasmin.ExecCtx, _ any) error {
		return x.Compute(500 * time.Microsecond)
	}, nil, yasmin.VSelect{}); err != nil {
		t.Fatal(err)
	}
	env.RunMain(func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(120 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	env.Wait()
	if st := app.Recorder().Task("t"); st == nil || st.Jobs < 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeMultiVersionWithBattery(t *testing.T) {
	eng := yasmin.NewEngine(6)
	env, err := yasmin.NewSimEnv(eng, yasmin.ApalisTK1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := yasmin.NewBattery(500)
	if err != nil {
		t.Fatal(err)
	}
	app, err := yasmin.New(yasmin.Config{
		Workers:       2,
		WorkerCores:   []int{1, 2},
		SchedulerCore: 0,
		VersionSelect: yasmin.SelectEnergy,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	app.SetBattery(bat)
	tid, err := app.TaskDecl(yasmin.TData{Name: "multi", Period: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ran := map[string]int{}
	mk := func(name string) yasmin.TaskFunc {
		return func(x *yasmin.ExecCtx, _ any) error {
			ran[name]++
			return x.Compute(time.Millisecond)
		}
	}
	if _, err := app.VersionDecl(tid, mk("cheap"), nil,
		yasmin.VSelect{Quality: 1, EnergyBudget: 0.2}); err != nil {
		t.Fatal(err)
	}
	hv, err := app.VersionDecl(tid, mk("rich"), nil,
		yasmin.VSelect{Quality: 5, EnergyBudget: 5, MinBattery: 50})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := app.HwAccelDecl("kepler-gk20a")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.HwAccelUse(tid, hv, gpu); err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", -1, func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(50 * time.Millisecond)
		if err := bat.SetLevel(10); err != nil {
			t.Error(err)
		}
		c.Sleep(50 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(1 << 62); err != nil {
		t.Fatal(err)
	}
	if ran["rich"] == 0 || ran["cheap"] == 0 {
		t.Fatalf("version mix = %v, want both versions used across the battery drop", ran)
	}
}

func TestFacadeBuilderRun(t *testing.T) {
	eng := yasmin.NewEngine(9)
	env, err := yasmin.NewSimEnv(eng, yasmin.OdroidXU4(), nil)
	if err != nil {
		t.Fatal(err)
	}
	app, err := yasmin.NewApp("chain").
		Task("src").Period(10*time.Millisecond).
		Version(nil, yasmin.VSelect{WCET: time.Millisecond}).
		ChanTo("sink", 4).
		Task("sink").
		Version(nil, yasmin.VSelect{WCET: 2 * time.Millisecond}).
		Build(yasmin.Config{
			Workers:       2,
			WorkerCores:   []int{4, 5},
			SchedulerCore: 6,
		}, env)
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("main", -1, func(c yasmin.Ctx) {
		if err := app.Start(c); err != nil {
			t.Errorf("start: %v", err)
			return
		}
		c.Sleep(100 * time.Millisecond)
		app.Stop(c)
		app.Cleanup(c)
	})
	if err := eng.Run(1 << 62); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"src", "sink"} {
		if st := app.Recorder().Task(name); st == nil || st.Jobs < 9 {
			t.Fatalf("task %s stats = %+v", name, st)
		}
	}
	if err := app.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSpecJSON(t *testing.T) {
	s, err := yasmin.LoadSpec(strings.NewReader(`{
		"name": "two",
		"channels": [{"name": "ab", "capacity": 2, "src": "a", "dst": "b"}],
		"tasks": [
			{"name": "a", "period": "20ms", "versions": [{"wcet": "1ms"}]},
			{"name": "b", "versions": [{"wcet": "2ms"}]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.TaskID("b") != 1 {
		t.Fatalf("TaskID(b) = %d", s.TaskID("b"))
	}
	set, err := s.TaskSet()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 || set.Tasks[1].Period != 20*time.Millisecond {
		t.Fatalf("bridged set = %+v", set.Tasks)
	}
}

func TestFacadeOfflineSynthesis(t *testing.T) {
	specs := []yasmin.OfflineTaskSpec{
		{Name: "a", Period: 10 * time.Millisecond, Versions: []yasmin.OfflineVersionSpec{
			{WCET: 2 * time.Millisecond, Accel: -1},
		}},
		{Name: "b", Period: 20 * time.Millisecond, Versions: []yasmin.OfflineVersionSpec{
			{WCET: 4 * time.Millisecond, Accel: -1},
		}},
	}
	sched, err := yasmin.Synthesize(specs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Table.Cycle != 20*time.Millisecond {
		t.Errorf("cycle = %v", sched.Table.Cycle)
	}
	if len(sched.Placements) != 3 {
		t.Errorf("placements = %d, want 3", len(sched.Placements))
	}
}
