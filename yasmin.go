// Package yasmin is a Go reproduction of "YASMIN: a Real-time Middleware for
// COTS Heterogeneous Platforms" (Rouxel, Altmeyer, Grelck — MIDDLEWARE 2021):
// user-space real-time scheduling of multi-version task sets, with global,
// partitioned and off-line (table-driven) policies, DAG task graphs over
// FIFO channels, accelerator-aware version selection and priority
// inheritance.
//
// The facade re-exports the stable surface of the implementation packages:
//
//   - the middleware itself (App, Config, TData, VSelect, ExecCtx, ...),
//   - the execution environments (deterministic virtual-time simulation and
//     the best-effort wall-clock backend),
//   - platform models (Odroid-XU4, Apalis TK1) and kernel latency models,
//   - the off-line schedule synthesiser.
//
// Quick start (wall clock, fluent builder):
//
//	env := yasmin.NewOSEnv()
//	app, err := yasmin.NewApp("ticker").
//		Task("tick").Period(20*time.Millisecond).
//		Version(func(x *yasmin.ExecCtx, _ any) error {
//			return x.Compute(time.Millisecond)
//		}, yasmin.VSelect{}).
//		Build(yasmin.Config{Workers: 2}, env)
//	env.RunMain(func(c yasmin.Ctx) {
//		app.Start(c)
//		c.Sleep(time.Second)
//		app.Stop(c)
//		app.Cleanup(c)
//	})
//
// # Communication: topics and typed ports
//
// Tasks communicate through topics: named pub-sub channels connecting N
// publishers to M subscribers over ONE shared buffer (per-subscriber
// cursors — no per-subscriber copies), with a per-topic priority, capacity
// and overflow policy (Reject: publish fails when full, the paper's
// Table-1 semantics; DropOldest: bounded-lag streaming; Latest: conflation
// for sensor streams). Typed ports pin the element type and direction at
// compile time:
//
//	tele := b.Topic("telemetry", yasmin.TopicOpts{Capacity: 1, Policy: yasmin.Latest})
//	out := yasmin.PubOf[Reading](tele) // in the sensor task:  yasmin.Send(x, out, r)
//	in := yasmin.SubOf[Reading](tele)  // in a monitor task:   yasmin.Recv(x, in)
//
// On the wall-clock backend, multi-publisher topics fan in through a
// lock-free MPSC ring, so publishers never serialise on the middleware
// lock. The paper's point-to-point FIFO API (ChannelDecl / Push / Pop) is
// the degenerate case — a 1-publisher/1-subscriber Reject topic — and keeps
// working unchanged.
//
// Applications can equally be loaded from declarative JSON spec files —
// tasks, versions (with WCETs, energy budgets, accelerator bindings),
// channels and topics — and instantiated on any environment:
//
//	s, _ := yasmin.LoadSpecFile("app.json")
//	app, _ := s.Build(yasmin.Config{Workers: 2}, env)
//
// The imperative Table-1 calls (TaskDecl, VersionDecl, ChannelDecl,
// ChannelConnect, and the topic extensions TopicDecl/TopicPub/TopicSub)
// remain available on App for fine-grained control; the spec layer performs
// exactly those calls.
//
// # Live reconfiguration
//
// The Table-1 lifecycle freezes declarations at Start; YASMIN instead
// reconfigures running applications transactionally. App.Reconfigure
// batches add/remove/retune operations, validates them, runs an online
// admission test (response-time / demand-bound / density analysis matching
// the configured mapping and priority policy) and commits at a quiescent
// point: removed tasks drain at job boundaries, surviving tasks — and their
// in-flight topic state — are untouched. Infeasible transactions are
// rejected with ErrNotSchedulable naming the offending task while the
// application keeps running. Declaratively, Diff computes the transaction
// between two AppSpecs, SwitchSpec applies it, and AppSpec.Modes +
// App.SwitchMode drive named mission phases (see examples/mode-switch).
//
// # Accelerators
//
// Shared accelerators (Section 3.2) are declared as pools of
// interchangeable instances (App.HwAccelDeclPool, AccelSpec.Count,
// Builder.AccelPool); version selection takes any free instance and
// contention is arbitrated with the Priority Inheritance Protocol —
// transitively along holder chains, since ExecCtx.AccelSectionOn lets a
// job run a section on a second accelerator while still holding its
// version-bound one. Admission prices the contention: per-task PIP
// blocking bounds (declare section lengths with VSelect.AccelCS) join the
// schedulability tests, so a Reconfigure transaction that only fits by
// ignoring priority inversion is rejected with the blocking term named.
// See examples/accel-pool.
//
// See examples/ for the paper's diamond-graph listing, the Search & Rescue
// drone application, off-line scheduling, design-space exploration, and the
// telemetry-fanout pub-sub demo; see cmd/ for the tools that regenerate the
// paper's Fig. 2, Table 2 and Fig. 4.
package yasmin

import (
	"time"

	"github.com/yasmin-rt/yasmin/internal/core"
	"github.com/yasmin-rt/yasmin/internal/kernel"
	"github.com/yasmin-rt/yasmin/internal/offline"
	"github.com/yasmin-rt/yasmin/internal/platform"
	"github.com/yasmin-rt/yasmin/internal/rt"
	"github.com/yasmin-rt/yasmin/internal/sim"
	"github.com/yasmin-rt/yasmin/internal/spec"
	"github.com/yasmin-rt/yasmin/internal/taskset"
)

// Middleware types (paper Table 1 API).
type (
	// App is a YASMIN middleware instance.
	App = core.App
	// Config is the static configuration (the paper's config.h).
	Config = core.Config
	// TData describes a task at declaration.
	TData = core.TData
	// VSelect carries a version's extra-functional properties.
	VSelect = core.VSelect
	// ExecCtx is the execution context passed to task functions.
	ExecCtx = core.ExecCtx
	// TaskFunc is a task version entry point.
	TaskFunc = core.TaskFunc
	// SelectFunc is the user version-selection callback.
	SelectFunc = core.SelectFunc
	// VersionInfo is the per-version view given to SelectFunc.
	VersionInfo = core.VersionInfo
	// SelectState is the runtime state given to SelectFunc.
	SelectState = core.SelectState
	// OfflineTable is a pre-computed dispatch table.
	OfflineTable = core.OfflineTable
	// TableEntry is one off-line dispatch slot.
	TableEntry = core.TableEntry
	// TID, VID, HID and CID identify tasks, versions, accelerators and
	// channels/topics.
	TID = core.TID
	VID = core.VID
	HID = core.HID
	CID = core.CID
)

// Pub-sub messaging layer: topics connect N publishers to M subscribers
// over one shared buffer; typed Ports make the endpoints compile-time safe.
type (
	// TopicOpts configures a topic (capacity, overflow policy, priority).
	TopicOpts = core.TopicOpts
	// OverflowPolicy selects what a full topic does on publish.
	OverflowPolicy = core.OverflowPolicy
	// Port is a typed, directional topic endpoint (see PubOf/SubOf).
	Port[T any] = core.Port[T]
	// PortDir distinguishes publish from subscribe ports.
	PortDir = core.PortDir
)

// Overflow policies and port directions.
const (
	// Reject fails the publish when the slowest subscriber's backlog is at
	// capacity — the Table-1 push-fails-when-full semantics.
	Reject = core.Reject
	// DropOldest overwrites the oldest retained entry when full.
	DropOldest = core.DropOldest
	// Latest conflates: a take returns only the newest published value.
	Latest = core.Latest

	// PubPort marks a typed port as a publish endpoint.
	PubPort = core.PubPort
	// SubPort marks a typed port as a subscribe endpoint.
	SubPort = core.SubPort
)

// PubOf wraps topic c as a typed publish endpoint.
func PubOf[T any](c CID) Port[T] { return core.PubOf[T](c) }

// SubOf wraps topic c as a typed subscribe endpoint.
func SubOf[T any](c CID) Port[T] { return core.SubOf[T](c) }

// Send publishes v through a typed publish port.
func Send[T any](x *ExecCtx, p Port[T], v T) error { return core.Send(x, p, v) }

// Recv takes the next pending value through a typed subscribe port; ok is
// false when nothing is pending.
func Recv[T any](x *ExecCtx, p Port[T]) (v T, ok bool, err error) { return core.Recv(x, p) }

// Configuration enums.
const (
	// MappingGlobal shares one ready queue among all worker threads.
	MappingGlobal = core.MappingGlobal
	// MappingPartitioned gives each worker its own ready queue; every task
	// is bound to a virtual core.
	MappingPartitioned = core.MappingPartitioned
	// MappingOffline runs a pre-computed time-triggered dispatch table.
	MappingOffline = core.MappingOffline

	// PriorityRM orders ready jobs by period (rate monotonic).
	PriorityRM = core.PriorityRM
	// PriorityDM orders ready jobs by relative deadline (deadline
	// monotonic).
	PriorityDM = core.PriorityDM
	// PriorityEDF orders ready jobs by absolute deadline.
	PriorityEDF = core.PriorityEDF
	// PriorityUser orders ready jobs by the user-assigned static priority.
	PriorityUser = core.PriorityUser

	// SelectFirst always runs the first declared runnable version.
	SelectFirst = core.SelectFirst
	// SelectEnergy runs the best-quality version the battery affords.
	SelectEnergy = core.SelectEnergy
	// SelectTradeoff minimises alpha*WCET + (1-alpha)*energy.
	SelectTradeoff = core.SelectTradeoff
	// SelectMode runs the first version matching the execution mode.
	SelectMode = core.SelectMode
	// SelectBitmask runs the first version whose permission mask matches.
	SelectBitmask = core.SelectBitmask
	// SelectUser delegates version selection to a user callback.
	SelectUser = core.SelectUser

	// WaitSleep parks idle workers in the kernel (energy over latency).
	WaitSleep = core.WaitSleep
	// WaitSpin busy-waits idle workers (latency over energy).
	WaitSpin = core.WaitSpin

	// LockPOSIX uses POSIX-style mutexes for the internal locks.
	LockPOSIX = core.LockPOSIX
	// LockFree uses spin/lock-free algorithms for the internal locks.
	LockFree = core.LockFree

	// NoAccel marks CPU-only versions.
	NoAccel = core.NoAccel

	// UnpinnedCore spawns environment threads without core affinity.
	UnpinnedCore = rt.UnpinnedCore
)

// New creates a middleware instance on the given environment.
func New(cfg Config, env Env) (*App, error) { return core.New(cfg, env) }

// Live reconfiguration: App.Reconfigure batches add/remove/retune of tasks,
// topics and edges into one transaction, validates it, runs the online
// admission test (internal/analysis keyed on Config.Mapping+Priority) and
// commits at a quiescent point — removed tasks drain at job boundaries,
// unaffected tasks never stop. Declaratively, Diff computes the same
// transaction from two AppSpecs and SwitchSpec applies it; AppSpec.Modes
// plus App.SwitchMode drive named mission phases.
type (
	// Reconfig is a live reconfiguration transaction (see App.Reconfigure).
	Reconfig = core.Reconfig
	// ModePreset is a named reconfiguration recipe (App.InstallMode).
	ModePreset = core.ModePreset
	// NotSchedulableError carries the task an admission rejection pins the
	// violation on; it matches ErrNotSchedulable via errors.Is.
	NotSchedulableError = core.NotSchedulableError
	// ModeSpec declares a named mode (active task subset) in an AppSpec.
	ModeSpec = spec.ModeSpec
	// Plan is the transaction Diff derives from two AppSpecs.
	Plan = spec.Plan
	// PlanChannel identifies a channel a Plan removes.
	PlanChannel = spec.PlanChannel
)

// Sentinel errors.
var (
	// ErrNotSchedulable matches every admission rejection (errors.Is); the
	// concrete value is a *NotSchedulableError naming the offending task.
	ErrNotSchedulable = core.ErrNotSchedulable
	// ErrStarted is returned by declaration calls while the schedule runs;
	// use Reconfigure/SwitchMode/SwitchSpec for live changes instead.
	ErrStarted = core.ErrStarted
)

// Diff computes the reconfiguration Plan turning one AppSpec into another.
var Diff = spec.Diff

// SwitchSpec diffs two AppSpecs and applies the plan to a (running or
// stopped) App in one admitted, quiescent transaction.
var SwitchSpec = spec.SwitchSpec

// Declarative application descriptions (the spec layer): a serializable
// AppSpec mirrors the whole Table-1 construction surface, and the fluent
// Builder constructs one from code with accumulated (not per-call) errors.
type (
	// AppSpec is a complete, JSON-(de)serializable application description.
	AppSpec = spec.Spec
	// TaskSpec describes one task and its versions.
	TaskSpec = spec.TaskSpec
	// VersionSpec describes one implementation of a task.
	VersionSpec = spec.VersionSpec
	// ChannelSpec describes one FIFO channel and its endpoints.
	ChannelSpec = spec.ChannelSpec
	// TopicSpec describes one pub-sub topic and its endpoints.
	TopicSpec = spec.TopicSpec
	// AccelSpec describes one hardware accelerator.
	AccelSpec = spec.AccelSpec
	// Builder is the fluent, error-accumulating application constructor.
	Builder = spec.Builder
	// TaskBuilder is the task-scoped part of a Builder chain.
	TaskBuilder = spec.TaskBuilder
	// Duration is a human-readable JSON duration ("250ms") used in specs.
	Duration = spec.Duration
	// TaskSet is the flat descriptive task model used by the analyses and
	// generators (bridged from specs via AppSpec.TaskSet).
	TaskSet = taskset.Set
)

// Spec-layer constructors.
var (
	// NewApp starts a fluent application description.
	NewApp = spec.NewApp
	// LoadSpec parses and validates an application spec from JSON.
	LoadSpec = spec.Load
	// LoadSpecFile reads and validates an application spec file.
	LoadSpecFile = spec.LoadFile
	// FromTaskSet lifts a flat task set into an application spec.
	FromTaskSet = spec.FromTaskSet
)

// Execution environments.
type (
	// Env abstracts the execution substrate.
	Env = rt.Env
	// Ctx is a thread's view of its environment.
	Ctx = rt.Ctx
	// Thread is a handle on a spawned thread.
	Thread = rt.Thread
	// SimEnv runs in deterministic virtual time.
	SimEnv = rt.SimEnv
	// OSEnv runs on goroutines in wall-clock time (soft real time: the Go
	// garbage collector and scheduler still interfere — the reason the
	// paper experiments use SimEnv).
	OSEnv = rt.OSEnv
	// Engine is the discrete-event simulation engine under SimEnv.
	Engine = sim.Engine
)

// NewOSEnv creates the wall-clock environment.
func NewOSEnv() *OSEnv { return rt.NewOSEnv() }

// NewEngine creates a deterministic simulation engine.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// SimTime converts a duration into the engine's virtual-time unit (for
// Engine.Run horizons).
func SimTime(d time.Duration) sim.Time { return sim.Time(d) }

// NewSimEnv creates a virtual-time environment on an engine and platform;
// wake may be nil for an idealised kernel or kernel.WakeFunc(model, rng)
// for a realistic one.
func NewSimEnv(eng *Engine, pl *Platform, wake rt.WakeLatencyFunc) (*SimEnv, error) {
	return rt.NewSimEnv(eng, pl, wake)
}

// Platform models.
type (
	// Platform describes a target board.
	Platform = platform.Platform
	// Battery models the energy source for SelectEnergy.
	Battery = platform.Battery
	// CostModel prices middleware primitives in virtual time.
	CostModel = platform.CostModel
)

// Platform presets.
var (
	// OdroidXU4 is the paper's Section 4 evaluation board.
	OdroidXU4 = platform.OdroidXU4
	// ApalisTK1 is the paper's Section 5 drone payload board.
	ApalisTK1 = platform.ApalisTK1
	// NewBattery creates a battery with the given capacity (mJ).
	NewBattery = platform.NewBattery
)

// KernelModel is a kernel substrate model (vanilla Linux, PREEMPT_RT,
// Xenomai, ...) for Table 2-style latency studies.
type KernelModel = kernel.Model

// Kernel model constructors.
var (
	// WakeFunc adapts a kernel model to SimEnv.
	WakeFunc = kernel.WakeFunc
)

// Off-line schedule synthesis (Section 3.4).
type (
	// OfflineTaskSpec describes a task to the synthesiser.
	OfflineTaskSpec = offline.TaskSpec
	// OfflineVersionSpec describes one version to the synthesiser.
	OfflineVersionSpec = offline.VersionSpec
	// OfflineSchedule is a synthesis result.
	OfflineSchedule = offline.Schedule
)

// Synthesize computes a time-triggered table for the given specs.
var Synthesize = offline.Synthesize
